package core

import (
	"fmt"
	"hash/fnv"
	"math/rand/v2"
	"sort"
	"sync"

	"climber/internal/centroid"
	"climber/internal/cluster"
	"climber/internal/grouping"
	"climber/internal/metric"
	"climber/internal/paa"
	"climber/internal/packing"
	"climber/internal/pivot"
	"climber/internal/series"
	"climber/internal/storage"
	"climber/internal/trie"
)

// Group is one entry of the index's 1st level: a data-series group
// (Definition 8) with its rank-insensitive centroid and the trie that
// splits it into partitions (Definition 12). The fall-back group G0 has a
// nil centroid and a childless trie.
type Group struct {
	ID int
	// Centroid is the group's rank-insensitive P4↛ signature; nil for the
	// fall-back group G0 (the paper's <*,*,...>).
	Centroid pivot.Signature
	// Trie is the group's Voronoi-splitting trie; its root count is the
	// (sample-scaled) estimated membership.
	Trie *trie.Node
	// DefaultPartition receives members that cannot navigate a complete
	// root-to-leaf path — the group's least-occupied partition (Section V,
	// Step 3).
	DefaultPartition int
	// ClusterBase offsets this group's trie-node IDs into the global
	// record-cluster ID space of the partition files.
	ClusterBase int64

	nodeByID []*trie.Node
}

// node returns the trie node with the given local ID.
func (g *Group) node(id int) *trie.Node { return g.nodeByID[id] }

// indexNodes (re)builds the local-ID lookup table.
func (g *Group) indexNodes() {
	nodes := g.Trie.Nodes()
	g.nodeByID = make([]*trie.Node, len(nodes))
	for _, n := range nodes {
		g.nodeByID[n.ID] = n
	}
}

// OverflowCluster returns the record-cluster ID that holds the group's
// overflow records (incomplete trie paths) inside its default partition.
func (g *Group) OverflowCluster() storage.ClusterID {
	return storage.ClusterID(-(int64(g.ID) + 1))
}

// ClusterOf returns the global record-cluster ID of a trie node of this
// group.
func (g *Group) ClusterOf(n *trie.Node) storage.ClusterID {
	return storage.ClusterID(g.ClusterBase + int64(n.ID))
}

// Skeleton is the global index structure kept on the master and broadcast to
// all workers (paper Figure 5): the pivot set, the groups list, and the trie
// forest, plus the partition directory. It is immutable after construction
// and safe for concurrent use.
type Skeleton struct {
	Cfg         Config
	SeriesLen   int
	Transformer *paa.Transformer
	Pivots      *pivot.Set
	Weigher     *metric.Weigher
	Assigner    *grouping.Assigner
	// Groups indexed by group ID; Groups[0] is the fall-back G0.
	Groups []*Group
	// NumPartitions is the number of physical partitions in the layout.
	NumPartitions int
	// PartitionEst estimates each partition's record count from the sample
	// (used to pick default partitions and report packing quality).
	PartitionEst []int
}

// BuildSkeleton runs Steps 1-3 of the index-construction workflow (paper
// Figure 6) on an in-memory sample of the dataset:
//
//	Step 1 — PAA conversion of the sample, random pivot selection, and
//	         rank-sensitive signature generation;
//	Step 2 — frequency aggregation and data-driven centroid computation
//	         (Algorithm 2);
//	Step 3 — group formation (Algorithm 1), trie splitting, and FFD packing
//	         of trie leaves into partitions.
//
// The sample must contain at least Cfg.NumPivots series.
func BuildSkeleton(sample *series.Dataset, seriesLen int, cfg Config) (*Skeleton, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if sample.Length() != seriesLen {
		return nil, fmt.Errorf("core: sample series length %d != dataset length %d", sample.Length(), seriesLen)
	}
	if sample.Len() < cfg.NumPivots {
		return nil, fmt.Errorf("core: sample of %d series cannot supply %d pivots", sample.Len(), cfg.NumPivots)
	}
	tr, err := paa.NewTransformer(seriesLen, cfg.Segments)
	if err != nil {
		return nil, err
	}
	weigher, err := metric.NewWeigher(cfg.PrefixLen, cfg.Decay, cfg.Lambda)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x5851f42d4c957f2d))
	workers := cfg.workers()

	// --- Step 1: PAA signatures and pivot selection -----------------------
	// The per-sample transforms are independent; fan them across the build
	// workers, each writing its own slot.
	paaSigs := make([][]float64, sample.Len())
	parallelChunks(sample.Len(), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			paaSigs[i] = tr.Transform(sample.Get(i))
		}
	})
	pivots, err := pivot.SelectRandom(paaSigs, cfg.NumPivots, cfg.PrefixLen, rng)
	if err != nil {
		return nil, err
	}

	// Rank-sensitive signatures of the sample, aggregated by exact match.
	// Signature generation (a kNN scan over all r pivots per sample) is the
	// dominant skeleton cost, so each worker aggregates its chunk into a
	// private map; the partial maps are then merged in chunk order with each
	// map's keys sorted, so the merged aggregate — and the representative
	// sig pointer kept for each key — never depends on scheduling. (Equal
	// keys always carry equal signatures, and frequency addition commutes,
	// so the merge is bit-identical to the sequential aggregation.)
	type aggEntry struct {
		sig  pivot.Signature
		freq int
	}
	numChunks := chunkCount(sample.Len(), workers)
	partials := make([]map[string]*aggEntry, numChunks)
	parallelChunksIndexed(sample.Len(), workers, func(chunk, lo, hi int) {
		agg := make(map[string]*aggEntry)
		for _, ps := range paaSigs[lo:hi] {
			sig := pivots.RankSensitive(ps)
			key := sig.Key()
			if e, ok := agg[key]; ok {
				e.freq++
			} else {
				agg[key] = &aggEntry{sig: sig, freq: 1}
			}
		}
		partials[chunk] = agg
	})
	rsAgg := make(map[string]*aggEntry)
	for _, agg := range partials {
		keys := make([]string, 0, len(agg))
		for k := range agg {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if e, ok := rsAgg[k]; ok {
				e.freq += agg[k].freq
			} else {
				rsAgg[k] = agg[k]
			}
		}
	}

	// --- Step 2: rank-insensitive aggregation and centroids ---------------
	riAgg := make(map[string]*aggEntry)
	for _, e := range rsAgg {
		ri := e.sig.RankInsensitive()
		key := ri.Key()
		if a, ok := riAgg[key]; ok {
			a.freq += e.freq
		} else {
			riAgg[key] = &aggEntry{sig: ri, freq: e.freq}
		}
	}
	riList := make([]centroid.SigFreq, 0, len(riAgg))
	for _, e := range riAgg {
		riList = append(riList, centroid.SigFreq{Sig: e.sig, Freq: e.freq})
	}
	centroids, err := centroid.Compute(riList, centroid.Params{
		SampleRate:   cfg.SampleRate,
		Capacity:     cfg.Capacity,
		Epsilon:      cfg.Epsilon,
		MaxCentroids: cfg.MaxCentroids,
	})
	if err != nil {
		return nil, err
	}
	assigner, err := grouping.NewAssigner(centroids, weigher)
	if err != nil {
		return nil, err
	}
	assigner.UseWeightTieBreak = !cfg.DisableWDTieBreak

	// --- Step 3: group formation, trie splitting, partition packing -------
	// Assign each distinct rank-sensitive signature (with its frequency) to
	// a group, scaling counts by 1/α to estimate full-dataset sizes.
	// Iterate in sorted key order and derive the tie-break generator from
	// each signature so the build is deterministic: map iteration order and
	// worker scheduling must never influence the index layout. Assignment
	// (Algorithm 1 against every centroid) is order-independent thanks to
	// the per-key seeded generator, so the loop fans across the build
	// workers; the per-group entry lists are then materialised sequentially
	// in sorted-key order, exactly as the sequential build appends them.
	numGroups := assigner.NumGroups()
	groupEntries := make([][]trie.Entry, numGroups)
	scale := 1.0 / cfg.SampleRate
	rsKeys := make([]string, 0, len(rsAgg))
	for k := range rsAgg {
		rsKeys = append(rsKeys, k)
	}
	sort.Strings(rsKeys)
	assigned := make([]int, len(rsKeys))
	parallelChunks(len(rsKeys), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e := rsAgg[rsKeys[i]]
			sigRNG := rand.New(rand.NewPCG(cfg.Seed, hashKey(rsKeys[i])))
			assigned[i] = assigner.Assign(e.sig, e.sig.RankInsensitive(), sigRNG)
		}
	})
	for i, k := range rsKeys {
		e := rsAgg[k]
		est := int(float64(e.freq)*scale + 0.5)
		if est < 1 {
			est = 1
		}
		groupEntries[assigned[i]] = append(groupEntries[assigned[i]], trie.Entry{Sig: e.sig, Count: est})
	}

	skel := &Skeleton{
		Cfg:         cfg,
		SeriesLen:   seriesLen,
		Transformer: tr,
		Pivots:      pivots,
		Weigher:     weigher,
		Assigner:    assigner,
		Groups:      make([]*Group, numGroups),
	}

	nextPartition := 0
	var clusterBase int64
	for gid := 0; gid < numGroups; gid++ {
		g := &Group{ID: gid, Centroid: assigner.Centroid(gid), ClusterBase: clusterBase}
		// Every group gets a trie — including G0, whose members (sharing no
		// pivot with any centroid) still benefit from rank-sensitive
		// organisation when they are frequent enough in the sample.
		root, err := trie.Build(groupEntries[gid], cfg.Capacity)
		if err != nil {
			return nil, err
		}
		g.Trie = root
		g.indexNodes()
		clusterBase += int64(len(g.nodeByID))

		// Pack the trie leaves into partitions with FFD (Definition 13).
		leaves := root.Leaves()
		items := make([]packing.Item, len(leaves))
		for i, l := range leaves {
			items[i] = packing.Item{ID: l.ID, Size: l.Count}
		}
		bins, err := packing.FirstFitDecreasing(items, cfg.Capacity)
		if err != nil {
			return nil, err
		}
		if len(bins) == 0 { // empty group still owns one partition
			bins = []packing.Bin{{}}
		}
		// Global partition IDs; the group's least-occupied bin becomes the
		// default partition for overflow records.
		defaultPart, defaultSize := -1, -1
		for b, bin := range bins {
			pid := nextPartition + b
			for _, leafID := range bin.Items {
				g.node(leafID).Partitions = []int{pid}
			}
			skel.PartitionEst = append(skel.PartitionEst, bin.Size)
			if defaultSize == -1 || bin.Size < defaultSize {
				defaultSize = bin.Size
				defaultPart = pid
			}
		}
		g.DefaultPartition = defaultPart
		nextPartition += len(bins)
		root.PropagatePartitions()
		if root.IsLeaf() && len(root.Partitions) == 0 {
			// A group packed into a single empty bin: the childless root
			// maps to that partition directly.
			root.Partitions = []int{defaultPart}
		}
		skel.Groups[gid] = g
	}
	skel.NumPartitions = nextPartition
	return skel, nil
}

// hashKey derives a stable 64-bit stream for per-signature tie-break
// generators.
func hashKey(k string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(k))
	return h.Sum64()
}

// chunkCount returns how many contiguous chunks parallelChunks splits n
// items into for the given worker count.
func chunkCount(n, workers int) int {
	if n <= 0 {
		return 0
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return 1
	}
	chunk := (n + workers - 1) / workers
	return (n + chunk - 1) / chunk
}

// parallelChunks splits [0, n) into one contiguous chunk per worker and runs
// fn on each concurrently. With one worker (or one item) it degenerates to a
// direct call — the sequential build, with no goroutine overhead. fn must
// only touch state disjoint per chunk.
func parallelChunks(n, workers int, fn func(lo, hi int)) {
	parallelChunksIndexed(n, workers, func(_, lo, hi int) { fn(lo, hi) })
}

// parallelChunksIndexed is parallelChunks with the chunk ordinal passed to
// fn, for workers that materialise one result slot per chunk.
func parallelChunksIndexed(n, workers int, fn func(chunk, lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, 0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for i, lo := 0, 0; lo < n; i, lo = i+1, lo+chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			fn(i, lo, hi)
		}(i, lo, hi)
	}
	wg.Wait()
}

// RouteRecord computes the partition and record cluster of one data series
// (Step 4 of Figure 6): PAA conversion, P4 dual-signature generation, group
// assignment (Algorithm 1), and trie navigation. Records that stop at an
// internal trie node are routed to the group's default partition under its
// overflow cluster.
//
// rng supplies Algorithm 1's random tie-break; pass a per-record
// deterministic generator for reproducible layouts.
func (s *Skeleton) RouteRecord(values []float64, rng *rand.Rand) cluster.Route {
	paaSig := s.Transformer.Transform(values)
	rs, ri := s.Pivots.Dual(paaSig)
	gid := s.Assigner.Assign(rs, ri, rng)
	g := s.Groups[gid]
	if leaf := g.Trie.DescendToLeaf(rs); leaf != nil {
		return cluster.Route{Partition: leaf.Partitions[0], Cluster: g.ClusterOf(leaf)}
	}
	return cluster.Route{Partition: g.DefaultPartition, Cluster: g.OverflowCluster()}
}

// GroupPartitions returns the sorted set of partition IDs owned by a group.
func (s *Skeleton) GroupPartitions(gid int) []int {
	g := s.Groups[gid]
	if len(g.Trie.Partitions) > 0 {
		return g.Trie.Partitions
	}
	return []int{g.DefaultPartition}
}

// NumGroups returns the number of groups including the fall-back G0.
func (s *Skeleton) NumGroups() int { return len(s.Groups) }
