package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"time"

	"climber"
)

// ParseVariant maps the wire name of a query algorithm to its Variant.
func ParseVariant(s string) (climber.Variant, error) {
	switch s {
	case "", "adaptive-4x":
		return climber.Adaptive4X, nil
	case "knn":
		return climber.KNN, nil
	case "adaptive-2x":
		return climber.Adaptive2X, nil
	case "od-smallest":
		return climber.ODSmallest, nil
	default:
		return 0, fmt.Errorf("unknown variant %q (knn, adaptive-2x, adaptive-4x, od-smallest)", s)
	}
}

// DecodeJSON unmarshals one JSON value from data, rejecting trailing
// garbage. encoding/json rejects NaN and infinite numbers on its own, so a
// decoded query is always finite.
func DecodeJSON(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON body")
	}
	return nil
}

// CheckQuery validates one query series against the index shape: non-empty,
// exactly seriesLen values, all finite.
func CheckQuery(q []float64, seriesLen int) error {
	if len(q) == 0 {
		return fmt.Errorf("query is empty")
	}
	if len(q) != seriesLen {
		return fmt.Errorf("query length %d, index expects %d", len(q), seriesLen)
	}
	return checkFinite(q)
}

// checkFinite rejects NaN and infinite readings.
func checkFinite(q []float64) error {
	for _, v := range q {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("query contains a non-finite value")
		}
	}
	return nil
}

// checkOptions validates and normalises the shared request options in
// place: k defaults to DefaultK and is bounded by maxK, the variant must
// parse, and max_partitions / time_budget_ms must not be negative.
func checkOptions(k *int, variant string, maxPartitions, timeBudgetMS, maxK int) error {
	if *k == 0 {
		*k = DefaultK
	}
	if *k < 0 {
		return fmt.Errorf("k must be positive, got %d", *k)
	}
	if *k > maxK {
		return fmt.Errorf("k %d exceeds the server limit %d", *k, maxK)
	}
	if _, err := ParseVariant(variant); err != nil {
		return err
	}
	if maxPartitions < 0 {
		return fmt.Errorf("max_partitions must not be negative, got %d", maxPartitions)
	}
	if timeBudgetMS < 0 {
		return fmt.Errorf("time_budget_ms must not be negative, got %d", timeBudgetMS)
	}
	if timeBudgetMS > MaxTimeBudgetMS {
		return fmt.Errorf("time_budget_ms %d exceeds the limit %d (1 hour)", timeBudgetMS, MaxTimeBudgetMS)
	}
	return nil
}

// DecodeSearchRequest parses and validates a POST /search body. On success
// the request is well-formed: the query is finite with the indexed length,
// 1 <= k <= maxK, and the variant parses.
func DecodeSearchRequest(data []byte, seriesLen, maxK int) (*SearchRequest, error) {
	var req SearchRequest
	if err := DecodeJSON(data, &req); err != nil {
		return nil, err
	}
	if err := checkOptions(&req.K, req.Variant, req.MaxPartitions, req.TimeBudgetMS, maxK); err != nil {
		return nil, err
	}
	if err := CheckQuery(req.Query, seriesLen); err != nil {
		return nil, err
	}
	return &req, nil
}

// DecodePrefixRequest parses and validates a POST /search/prefix body. The
// query may be shorter than the indexed series length but no shorter than
// minLen (the index's PAA segment count — shorter prefixes cannot be
// transformed); every other guarantee matches DecodeSearchRequest.
func DecodePrefixRequest(data []byte, minLen, seriesLen, maxK int) (*SearchRequest, error) {
	var req SearchRequest
	if err := DecodeJSON(data, &req); err != nil {
		return nil, err
	}
	if err := checkOptions(&req.K, req.Variant, req.MaxPartitions, req.TimeBudgetMS, maxK); err != nil {
		return nil, err
	}
	if len(req.Query) < minLen || len(req.Query) > seriesLen {
		return nil, fmt.Errorf("prefix query length %d outside [%d, %d]", len(req.Query), minLen, seriesLen)
	}
	if err := checkFinite(req.Query); err != nil {
		return nil, err
	}
	return &req, nil
}

// DecodeBatchRequest parses and validates a POST /search/batch body with
// the same guarantees as DecodeSearchRequest for every query, plus
// 1 <= len(queries) <= maxBatch.
func DecodeBatchRequest(data []byte, seriesLen, maxK, maxBatch int) (*BatchRequest, error) {
	var req BatchRequest
	if err := DecodeJSON(data, &req); err != nil {
		return nil, err
	}
	if err := checkOptions(&req.K, req.Variant, req.MaxPartitions, req.TimeBudgetMS, maxK); err != nil {
		return nil, err
	}
	if len(req.Queries) == 0 {
		return nil, fmt.Errorf("queries is empty")
	}
	if len(req.Queries) > maxBatch {
		return nil, fmt.Errorf("batch of %d queries exceeds the server limit %d", len(req.Queries), maxBatch)
	}
	for i, q := range req.Queries {
		if err := CheckQuery(q, seriesLen); err != nil {
			return nil, fmt.Errorf("query %d: %w", i, err)
		}
	}
	return &req, nil
}

// DecodeAppendRequest parses and validates a POST /append body: every
// series is finite with the indexed length, and 1 <= len(series) <=
// maxAppend.
func DecodeAppendRequest(data []byte, seriesLen, maxAppend int) (*AppendRequest, error) {
	var req AppendRequest
	if err := DecodeJSON(data, &req); err != nil {
		return nil, err
	}
	if len(req.Series) == 0 {
		return nil, fmt.Errorf("series is empty")
	}
	if len(req.Series) > maxAppend {
		return nil, fmt.Errorf("append of %d series exceeds the server limit %d", len(req.Series), maxAppend)
	}
	for i, s := range req.Series {
		if err := CheckQuery(s, seriesLen); err != nil {
			return nil, fmt.Errorf("series %d: %w", i, err)
		}
	}
	return &req, nil
}

// SearchOptions converts validated request options to climber search
// options. The variant must have been validated during decode. A positive
// timeBudgetMS arms the anytime deadline budget (the deadline starts
// counting when the search call folds its options).
func SearchOptions(variant string, maxPartitions, timeBudgetMS int) []climber.SearchOption {
	v, _ := ParseVariant(variant) // validated during decode
	opts := []climber.SearchOption{climber.WithVariant(v)}
	if maxPartitions > 0 {
		opts = append(opts, climber.WithMaxPartitions(maxPartitions))
	}
	if timeBudgetMS > 0 {
		opts = append(opts, climber.WithTimeBudget(time.Duration(timeBudgetMS)*time.Millisecond))
	}
	return opts
}
