package api

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"time"
)

// StatusClientClosedRequest is the non-standard status (nginx's 499)
// reported when the client disconnected before its answer was ready. The
// client never sees it; it keeps access logs and metrics honest.
const StatusClientClosedRequest = 499

// WriteJSON encodes v as the JSON body of a response with the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // the client is gone if this fails; nothing to do
}

// WriteError answers with an ErrorResponse carrying err's message.
func WriteError(w http.ResponseWriter, status int, err error) {
	WriteJSON(w, status, ErrorResponse{Error: err.Error()})
}

// ReadBody slurps one request body under a size cap and read deadline,
// shared by every serving layer. The deadline bounds admission-slot
// occupancy against slow-trickling clients; writers that cannot set one
// (test recorders) are served without it. On failure it returns the HTTP
// status to answer with (400, 408, or 413) alongside the error, and has
// already marked the connection for closure — the connection still holds
// unread body bytes, and net/http's post-handler drain of them must not
// wait past the deadline either.
func ReadBody(w http.ResponseWriter, r *http.Request, maxBytes int64, timeout time.Duration) (body []byte, status int, err error) {
	rc := http.NewResponseController(w)
	hasDeadline := rc.SetReadDeadline(time.Now().Add(timeout)) == nil
	body, err = io.ReadAll(http.MaxBytesReader(w, r.Body, maxBytes))
	if err != nil {
		w.Header().Set("Connection", "close")
		status = http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		switch {
		case errors.As(err, &tooLarge):
			status = http.StatusRequestEntityTooLarge
		case errors.Is(err, os.ErrDeadlineExceeded):
			status = http.StatusRequestTimeout
		}
		return nil, status, err
	}
	if hasDeadline {
		_ = rc.SetReadDeadline(time.Time{}) // disarm for the next request
	}
	return body, 0, nil
}
