// Package api is the HTTP wire contract of the CLIMBER serving stack: the
// request/response types, their decode-and-validate functions, and the small
// serving primitives (admission limiter, latency histogram, JSON response
// helpers) shared by the single-node query server (internal/server, mounted
// by cmd/climber-serve) and the shard router (internal/shard, mounted by
// cmd/climber-router).
//
// Both layers speak exactly the same dialect: a router can front any set of
// climber-serve processes, and a client cannot tell a single node from a
// sharded deployment by the shapes on the wire. Keeping the contract in one
// package is what enforces that — the router forwards request bodies it
// validated with the same decoders the shard will re-apply, and merges
// response bodies it can decode with the very types the shard encoded.
package api

import (
	"climber"
	"climber/internal/obs"
)

// DefaultK is the answer-set size used when a request omits k.
const DefaultK = 10

// MaxTimeBudgetMS caps time_budget_ms at one hour. Anything longer is a
// client error, and the bound keeps the servers' derived-deadline
// arithmetic (multiples of the budget) far away from duration overflow.
const MaxTimeBudgetMS = 3_600_000

// SearchRequest is the body of POST /search and POST /search/prefix. For
// /search the query must have the indexed series length; for /search/prefix
// it may be shorter (see DecodePrefixRequest).
type SearchRequest struct {
	// Query is the query series.
	Query []float64 `json:"query"`
	// K is the answer-set size; omitted or zero means DefaultK.
	K int `json:"k,omitempty"`
	// Variant selects the query algorithm: "knn", "adaptive-2x",
	// "adaptive-4x" (default) or "od-smallest".
	Variant string `json:"variant,omitempty"`
	// MaxPartitions, when positive, bounds the query to that many
	// partition loads: the adaptive variants shrink their plan to fit, and
	// every variant stops loading at the cap, marking the answer partial
	// when the plan wanted more.
	MaxPartitions int `json:"max_partitions,omitempty"`
	// TimeBudgetMS, when positive, is the anytime-query budget in
	// milliseconds: the engine stops at the first plan-step boundary past
	// it and answers with the best partial result (marked by the partial
	// and steps_executed response fields). The server additionally bounds
	// the whole request at a small multiple of the budget, so a budgeted
	// query can never hang past its promise. Step-boundary enforcement
	// scans the plan's partitions sequentially, so a generous budget costs
	// some latency versus no budget; prefer max_partitions (which keeps
	// the concurrent scan) for pure I/O caps.
	TimeBudgetMS int `json:"time_budget_ms,omitempty"`
	// Explain, when true, traces the query and returns the span tree and
	// the planner's decisions in the response (the explain and trace
	// fields). Routed requests are forwarded with the flag intact, so a
	// router answer nests every shard's span tree under its own.
	Explain bool `json:"explain,omitempty"`
}

// BatchRequest is the body of POST /search/batch. The per-request options
// apply to every query of the batch.
type BatchRequest struct {
	// Queries are the query series; each must have the indexed length.
	Queries [][]float64 `json:"queries"`
	// K is the per-query answer-set size; omitted or zero means DefaultK.
	K int `json:"k,omitempty"`
	// Variant selects the query algorithm for every query of the batch.
	Variant string `json:"variant,omitempty"`
	// MaxPartitions, when positive, bounds every query of the batch to
	// that many partition loads (see SearchRequest.MaxPartitions).
	MaxPartitions int `json:"max_partitions,omitempty"`
	// TimeBudgetMS, when positive, is the anytime budget for the batch as
	// a whole: the deadline is fixed once, so queries still running when
	// it passes answer partially (see SearchRequest.TimeBudgetMS).
	TimeBudgetMS int `json:"time_budget_ms,omitempty"`
	// Explain, when true, traces the batch and returns the span tree (one
	// child span per query) in the response's trace field. Per-query
	// planner decisions are a single-query concern; use /search for them.
	Explain bool `json:"explain,omitempty"`
}

// AppendRequest is the body of POST /append.
type AppendRequest struct {
	// Series are the data series to ingest; each must have the indexed
	// length.
	Series [][]float64 `json:"series"`
}

// AppendResponse is the body of a successful POST /append. When it arrives
// the series are durable (WAL-fsynced) and visible to /search.
type AppendResponse struct {
	// IDs are the assigned record IDs, aligned positionally with the
	// request's Series.
	IDs []int `json:"ids"`
}

// Result is one neighbour in a response: the record ID and its Euclidean
// distance to the query.
type Result struct {
	ID   int     `json:"id"`
	Dist float64 `json:"dist"`
}

// SearchResponse is the body of a successful POST /search or POST
// /search/prefix.
type SearchResponse struct {
	// Results are the approximate nearest neighbours, ascending by distance.
	Results []Result `json:"results"`
	// Stats is the effort behind the query (partitions scanned, records
	// compared, cache traffic).
	Stats climber.Stats `json:"stats"`
	// Partial marks an answer whose budget (time_budget_ms or
	// max_partitions) stopped the query before its full plan: the results
	// are the best answer for the effort spent, not the complete one.
	Partial bool `json:"partial,omitempty"`
	// StepsExecuted counts the plan steps that ran; together with
	// Stats.StepsPlanned it tells how much of the plan a partial answer
	// covered.
	StepsExecuted int `json:"steps_executed,omitempty"`
	// Explain is the planner's navigation and ranked-plan record; present
	// only when the request set explain. On a routed response the map is
	// keyed by shard ID (each shard planned independently); a single node
	// answers under the "" key.
	Explain map[string]*ExplainData `json:"explain,omitempty"`
	// Trace is the query's span tree; present only when the request set
	// explain. A routed response nests each shard's tree under the
	// router's per-shard spans.
	Trace *obs.SpanData `json:"trace,omitempty"`
}

// ExplainData is the wire form of the engine's query explanation: how
// the skeleton was navigated and what the ranked plan looked like, step
// scores included (see climber.Explanation for field semantics).
type ExplainData struct {
	// RankSensitive and RankInsensitive are the query's P4 dual signature.
	RankSensitive   []int `json:"rank_sensitive"`
	RankInsensitive []int `json:"rank_insensitive"`
	// BestOD is the smallest Overlap Distance to any group centroid.
	BestOD int `json:"best_od"`
	// CandidateGroups are the group IDs surviving OD/WD filtering.
	CandidateGroups []int `json:"candidate_groups"`
	// SelectedGroup is the group whose trie was chosen.
	SelectedGroup int `json:"selected_group"`
	// MatchedPath is the pivot-ID prefix matched in the group's trie.
	MatchedPath []int `json:"matched_path"`
	// TargetNodeSize is the estimated membership of the matched node.
	TargetNodeSize int `json:"target_node_size"`
	// Partitions are the partitions the plan selected, ascending.
	Partitions []int `json:"partitions"`
	// Variant names the plan policy that produced the plan.
	Variant string `json:"variant"`
	// Plan is the ranked step list with scores and executed flags.
	Plan []climber.PlanStepInfo `json:"plan"`
}

// ExplainFromCore converts the engine's explanation to its wire form.
// Returns nil on nil, so unexplained responses stay absent.
func ExplainFromCore(e *climber.Explanation) *ExplainData {
	if e == nil {
		return nil
	}
	return &ExplainData{
		RankSensitive:   e.RankSensitive,
		RankInsensitive: e.RankInsensitive,
		BestOD:          e.BestOD,
		CandidateGroups: e.CandidateGroups,
		SelectedGroup:   e.SelectedGroup,
		MatchedPath:     e.MatchedPath,
		TargetNodeSize:  e.TargetNodeSize,
		Partitions:      e.Partitions,
		Variant:         e.Variant,
		Plan:            e.Plan,
	}
}

// BatchResponse is the body of a successful POST /search/batch; Results
// aligns positionally with the request's Queries.
type BatchResponse struct {
	Results [][]Result `json:"results"`
	// Partial marks a batch in which at least one query's budget stopped
	// it before its full plan.
	Partial bool `json:"partial,omitempty"`
	// StepsExecuted sums the executed plan steps across the batch.
	StepsExecuted int `json:"steps_executed,omitempty"`
	// Trace is the batch's span tree (one child per query); present only
	// when the request set explain.
	Trace *obs.SpanData `json:"trace,omitempty"`
}

// InfoResponse is the body of GET /info: the database's structural shape.
type InfoResponse struct {
	SeriesLen     int `json:"series_len"`
	NumRecords    int `json:"num_records"`
	NumGroups     int `json:"num_groups"`
	NumPartitions int `json:"num_partitions"`
	SkeletonBytes int `json:"skeleton_bytes"`
	// Generation is the active index generation; it increments on every
	// completed online reindex (POST /reindex).
	Generation int `json:"generation"`
}

// ErrorResponse is the JSON body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
}
