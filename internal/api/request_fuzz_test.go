package api

import (
	"math"
	"testing"
)

// FuzzSearchRequest checks the request-decode layer's contract: for any
// body bytes, decoding never panics and either returns an error (the
// handler's clean 400) or a request whose invariants make it a valid query
// — finite values, the indexed length, k within bounds, a parseable
// variant. The same bytes are also pushed through the batch decoder.
func FuzzSearchRequest(f *testing.F) {
	f.Add([]byte(`{"query": [1, 2, 3, 4], "k": 5}`))
	f.Add([]byte(`{"query": [0.5, -1.25, 3e10, 4e-10], "k": 1, "variant": "knn"}`))
	f.Add([]byte(`{"query": [1,2,3,4], "variant": "od-smallest", "max_partitions": 3}`))
	f.Add([]byte(`{"queries": [[1,2,3,4],[5,6,7,8]], "k": 2}`))
	f.Add([]byte(`{"query": [1,2,3]}`)) // wrong length
	f.Add([]byte(`{"query": [1,2,3,4], "k": -7}`))
	f.Add([]byte(`{"query": [1,2,3,4]} trailing`))
	f.Add([]byte(`{"query": "not an array"}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[]`))
	f.Add([]byte(``))
	f.Add([]byte(`{"query": [1e999]}`))
	f.Add([]byte("\x00\xff\xfe"))

	const seriesLen, maxK, maxBatch = 4, 100, 8
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeSearchRequest(data, seriesLen, maxK)
		if err == nil {
			if len(req.Query) != seriesLen {
				t.Fatalf("accepted query of length %d, want %d", len(req.Query), seriesLen)
			}
			for _, v := range req.Query {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("accepted non-finite query value %v", v)
				}
			}
			if req.K < 1 || req.K > maxK {
				t.Fatalf("accepted k=%d outside [1, %d]", req.K, maxK)
			}
			if _, verr := ParseVariant(req.Variant); verr != nil {
				t.Fatalf("accepted unparseable variant %q", req.Variant)
			}
			if req.MaxPartitions < 0 {
				t.Fatalf("accepted negative max_partitions %d", req.MaxPartitions)
			}
		}
		breq, err := DecodeBatchRequest(data, seriesLen, maxK, maxBatch)
		if err == nil {
			if len(breq.Queries) < 1 || len(breq.Queries) > maxBatch {
				t.Fatalf("accepted batch of %d queries outside [1, %d]", len(breq.Queries), maxBatch)
			}
			for _, q := range breq.Queries {
				if len(q) != seriesLen {
					t.Fatalf("accepted batch query of length %d, want %d", len(q), seriesLen)
				}
				for _, v := range q {
					if math.IsNaN(v) || math.IsInf(v, 0) {
						t.Fatalf("accepted non-finite batch value %v", v)
					}
				}
			}
			if breq.K < 1 || breq.K > maxK {
				t.Fatalf("accepted batch k=%d outside [1, %d]", breq.K, maxK)
			}
		}
	})
}
