package api

import (
	"context"
	"errors"
	"net/http"
	"sync/atomic"
	"time"
)

// LimiterCounters receives the limiter's event counts. Any nil field is
// replaced with a private counter, so a zero LimiterCounters is valid; the
// serving layers pass pointers into their own metrics blocks so the numbers
// surface through /stats and /metrics without a second source of truth.
type LimiterCounters struct {
	// Queued gauges requests currently waiting for a slot.
	Queued *atomic.Int64
	// Rejected counts requests denied 429 after the queue deadline.
	Rejected *atomic.Int64
	// Canceled counts requests whose client hung up while queued.
	Canceled *atomic.Int64
	// InFlight gauges requests currently holding a slot.
	InFlight *atomic.Int64
}

func (c *LimiterCounters) fill() {
	if c.Queued == nil {
		c.Queued = new(atomic.Int64)
	}
	if c.Rejected == nil {
		c.Rejected = new(atomic.Int64)
	}
	if c.Canceled == nil {
		c.Canceled = new(atomic.Int64)
	}
	if c.InFlight == nil {
		c.InFlight = new(atomic.Int64)
	}
}

// Limiter is the admission-control semaphore every serving layer puts in
// front of its work: at most maxInFlight requests hold a slot at once, a
// request beyond the limit waits up to queueTimeout for one, and a request
// still waiting at the deadline is denied with 429. Reading and decoding a
// body is itself work an overloaded server must bound, so handlers admit
// before they read.
type Limiter struct {
	sem          chan struct{}
	queueTimeout time.Duration
	c            LimiterCounters
}

// NewLimiter builds a limiter with maxInFlight slots and the given queue
// deadline. Counters with nil fields fall back to private ones.
func NewLimiter(maxInFlight int, queueTimeout time.Duration, counters LimiterCounters) *Limiter {
	counters.fill()
	return &Limiter{
		sem:          make(chan struct{}, maxInFlight),
		queueTimeout: queueTimeout,
		c:            counters,
	}
}

// Admit acquires an in-flight slot, waiting up to the queue deadline. It
// returns the release function, or the HTTP status that denied admission
// (429 on deadline, StatusClientClosedRequest when ctx died while queued).
func (l *Limiter) Admit(ctx context.Context) (release func(), status int, err error) {
	select {
	case l.sem <- struct{}{}: // fast path: a slot is free
	default:
		l.c.Queued.Add(1)
		timer := time.NewTimer(l.queueTimeout)
		select {
		case l.sem <- struct{}{}:
			timer.Stop()
			l.c.Queued.Add(-1)
		case <-timer.C:
			l.c.Queued.Add(-1)
			l.c.Rejected.Add(1)
			return nil, http.StatusTooManyRequests, errors.New("server at capacity; retry later")
		case <-ctx.Done():
			timer.Stop()
			l.c.Queued.Add(-1)
			l.c.Canceled.Add(1) // the client hung up while waiting in line
			return nil, StatusClientClosedRequest, ctx.Err()
		}
	}
	l.c.InFlight.Add(1)
	return func() {
		l.c.InFlight.Add(-1)
		<-l.sem
	}, 0, nil
}

// AcquireExtra grabs up to n additional slots without blocking, returning
// how many it got and a release function. Batch requests use it to widen
// their internal worker pool only as far as idle capacity allows, keeping
// the total number of concurrently executing queries — single or inside
// batches — within the limit.
func (l *Limiter) AcquireExtra(n int) (got int, release func()) {
	for got < n {
		select {
		case l.sem <- struct{}{}:
			got++
		default:
			n = got
		}
	}
	l.c.InFlight.Add(int64(got))
	return got, func() {
		l.c.InFlight.Add(int64(-got))
		for i := 0; i < got; i++ {
			<-l.sem
		}
	}
}

// Cap returns the limiter's slot count.
func (l *Limiter) Cap() int { return cap(l.sem) }

// Held returns the number of slots currently held — for tests asserting no
// slot leaks after a burst.
func (l *Limiter) Held() int { return len(l.sem) }
