package api

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// LatencyBuckets are the upper bounds (seconds) of the serving-layer
// latency histograms, chosen to straddle the in-memory-hit to
// multi-partition-scan range; an implicit +Inf bucket catches the rest.
var LatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket latency histogram with atomic counters; safe
// for concurrent observation and rendering. The total count is derived
// from the buckets at render time so one exposition always satisfies the
// Prometheus invariant bucket{le="+Inf"} == _count, even when queries
// finish mid-scrape.
type Histogram struct {
	buckets []atomic.Int64 // per-bucket at observe, cumulated at render
	inf     atomic.Int64
	sumNs   atomic.Int64
}

// NewHistogram builds an empty histogram over LatencyBuckets.
func NewHistogram() *Histogram {
	return &Histogram{buckets: make([]atomic.Int64, len(LatencyBuckets))}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	s := d.Seconds()
	h.sumNs.Add(d.Nanoseconds())
	for i, le := range LatencyBuckets {
		if s <= le {
			h.buckets[i].Add(1)
			return
		}
	}
	h.inf.Add(1)
}

// Render writes the histogram in Prometheus text exposition under the
// given metric name; the cumulative count is derived from the buckets at
// render time so one exposition always satisfies bucket{le="+Inf"} ==
// _count.
func (h *Histogram) Render(w *strings.Builder, name, help string) {
	h.render(w, name, help, "", true)
}

// RenderLabeled is Render with a fixed label set (e.g. `stage="scan"`)
// attached to every series. The HELP/TYPE header is emitted only when
// withHeader is true, so several labeled instances of one metric family
// can share a single header: the caller emits the first with the header
// and the rest without.
func (h *Histogram) RenderLabeled(w *strings.Builder, name, labels, help string, withHeader bool) {
	h.render(w, name, help, labels, withHeader)
}

// render emits the exposition; labels, when non-empty, is a rendered
// label list without braces ('stage="scan"') merged into every series.
func (h *Histogram) render(w *strings.Builder, name, help, labels string, withHeader bool) {
	if withHeader {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	}
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum int64
	for i, le := range LatencyBuckets {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, strconv.FormatFloat(le, 'g', -1, 64), cum)
	}
	cum += h.inf.Load()
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n", name, float64(h.sumNs.Load())/1e9)
		fmt.Fprintf(w, "%s_count %d\n", name, cum)
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, float64(h.sumNs.Load())/1e9)
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, cum)
	}
}
