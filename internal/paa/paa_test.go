package paa

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"climber/internal/series"
)

// The paper's Figure 3 example: a 12-point series reduced to 4 segments
// yields the mean of each 3-point segment.
func TestTransformFigure3Style(t *testing.T) {
	tr := MustTransformer(12, 4)
	x := []float64{
		-1.5, -1.5, -1.5,
		-0.4, -0.4, -0.4,
		0.3, 0.3, 0.3,
		1.5, 1.5, 1.5,
	}
	got := tr.Transform(x)
	want := []float64{-1.5, -0.4, 0.3, 1.5}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("segment %d = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestTransformMeans(t *testing.T) {
	tr := MustTransformer(6, 2)
	got := tr.Transform([]float64{1, 2, 3, 10, 20, 30})
	if got[0] != 2 || got[1] != 20 {
		t.Fatalf("Transform = %v, want [2 20]", got)
	}
}

func TestTransformerValidation(t *testing.T) {
	if _, err := NewTransformer(0, 1); err == nil {
		t.Error("NewTransformer(0, 1) should fail")
	}
	if _, err := NewTransformer(4, 0); err == nil {
		t.Error("NewTransformer(4, 0) should fail")
	}
	if _, err := NewTransformer(4, 5); err == nil {
		t.Error("NewTransformer(4, 5) should fail: more segments than readings")
	}
	if _, err := NewTransformer(4, 4); err != nil {
		t.Errorf("NewTransformer(4, 4) should succeed, got %v", err)
	}
}

func TestTransformWrongLengthPanics(t *testing.T) {
	tr := MustTransformer(8, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("Transform of wrong-length series did not panic")
		}
	}()
	tr.Transform(make([]float64, 7))
}

// When w does not divide n, segments must cover every reading exactly once
// and differ in length by at most one.
func TestFractionalSegmentation(t *testing.T) {
	tr := MustTransformer(10, 3)
	total := 0
	minLen, maxLen := tr.N(), 0
	for i := 0; i < tr.W(); i++ {
		l := tr.SegmentLen(i)
		total += l
		if l < minLen {
			minLen = l
		}
		if l > maxLen {
			maxLen = l
		}
	}
	if total != 10 {
		t.Fatalf("segments cover %d readings, want 10", total)
	}
	if maxLen-minLen > 1 {
		t.Fatalf("segment lengths range [%d, %d]; want spread <= 1", minLen, maxLen)
	}
}

// Property: the PAA of a constant series is that constant in every segment.
func TestConstantSeriesProperty(t *testing.T) {
	f := func(c float64, wSeed uint8) bool {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			c = 0
		}
		c = math.Mod(c, 1e6)
		w := 1 + int(wSeed)%8
		tr := MustTransformer(16, w)
		x := make([]float64, 16)
		for i := range x {
			x[i] = c
		}
		for _, v := range tr.Transform(x) {
			if math.Abs(v-c) > 1e-9*math.Max(1, math.Abs(c)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: PAA is a contraction on averages — each output is within the
// min/max of its segment's readings.
func TestSegmentMeanBounds(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 9))
	tr := MustTransformer(24, 5)
	for trial := 0; trial < 100; trial++ {
		x := make([]float64, 24)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		out := tr.Transform(x)
		for i := 0; i < tr.W(); i++ {
			lo, hi := math.Inf(1), math.Inf(-1)
			for j := i * 24 / 5; j < (i+1)*24/5; j++ {
				lo = math.Min(lo, x[j])
				hi = math.Max(hi, x[j])
			}
			if out[i] < lo-1e-9 || out[i] > hi+1e-9 {
				t.Fatalf("segment %d mean %g outside [%g, %g]", i, out[i], lo, hi)
			}
		}
	}
}

// The PAA lower-bounding property (Keogh et al.): for any two series,
// sqrt(sum segLen*(a_i-b_i)^2) <= ED(X, Y). This is the invariant the
// Odyssey-style exact engine relies on for pruning.
func TestLowerBoundProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 13))
	for _, shape := range []struct{ n, w int }{{32, 8}, {30, 7}, {16, 16}, {9, 2}} {
		tr := MustTransformer(shape.n, shape.w)
		for trial := 0; trial < 200; trial++ {
			x := make([]float64, shape.n)
			y := make([]float64, shape.n)
			for i := range x {
				x[i] = rng.NormFloat64()
				y[i] = rng.NormFloat64()
			}
			lb := tr.LowerBoundDist(tr.Transform(x), tr.Transform(y))
			ed := series.Dist(x, y)
			if lb > ed+1e-9 {
				t.Fatalf("n=%d w=%d: PAA lower bound %g exceeds true distance %g", shape.n, shape.w, lb, ed)
			}
		}
	}
}

// With w == n, PAA is the identity and the lower bound is exact.
func TestLowerBoundTightWhenIdentity(t *testing.T) {
	tr := MustTransformer(8, 8)
	rng := rand.New(rand.NewPCG(2, 4))
	for trial := 0; trial < 50; trial++ {
		x := make([]float64, 8)
		y := make([]float64, 8)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		lb := tr.LowerBoundDist(tr.Transform(x), tr.Transform(y))
		ed := series.Dist(x, y)
		if math.Abs(lb-ed) > 1e-9 {
			t.Fatalf("identity PAA bound %g != distance %g", lb, ed)
		}
	}
}

func TestTransformInto(t *testing.T) {
	tr := MustTransformer(4, 2)
	dst := make([]float64, 2)
	tr.TransformInto(dst, []float64{1, 3, 5, 7})
	if dst[0] != 2 || dst[1] != 6 {
		t.Fatalf("TransformInto = %v, want [2 6]", dst)
	}
}

func TestTransformIntoBadDstPanics(t *testing.T) {
	tr := MustTransformer(4, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("TransformInto with wrong dst length did not panic")
		}
	}()
	tr.TransformInto(make([]float64, 3), []float64{1, 2, 3, 4})
}
