// Package paa implements Piecewise Aggregate Approximation (paper Section
// IV-B Step 1, Figure 3), the segmentation and dimensionality-reduction
// technique CLIMBER applies before pivot-based feature extraction.
//
// Given a raw series X of length n and a number of segments w << n, PAA
// divides X into w segments over the x-axis and represents each segment by
// its mean value, yielding a vector in a w-dimensional space. PAA is lossy,
// but — unlike iSAX — similarity is later evaluated on the mean values
// themselves rather than on quantised stripe labels, so it preserves
// similarity far better at the same w.
package paa

import (
	"fmt"
	"math"
)

// Transformer converts raw data series of a fixed length n into PAA
// signatures of w segments. A Transformer is immutable and safe for
// concurrent use.
type Transformer struct {
	n, w int
	// bounds[i] is the half-open reading range [bounds[i], bounds[i+1]) of
	// segment i. Precomputing the boundaries supports n not divisible by w
	// (readings are spread as evenly as possible, matching the fractional
	// PAA formulation).
	bounds []int
}

// NewTransformer returns a PAA transformer from length n down to w segments.
// It requires 0 < w <= n.
func NewTransformer(n, w int) (*Transformer, error) {
	if n <= 0 {
		return nil, fmt.Errorf("paa: series length must be positive, got %d", n)
	}
	if w <= 0 || w > n {
		return nil, fmt.Errorf("paa: segment count must be in [1, %d], got %d", n, w)
	}
	t := &Transformer{n: n, w: w, bounds: make([]int, w+1)}
	for i := 0; i <= w; i++ {
		t.bounds[i] = i * n / w
	}
	return t, nil
}

// MustTransformer is NewTransformer that panics on invalid arguments. It is
// intended for package-level defaults and tests.
func MustTransformer(n, w int) *Transformer {
	t, err := NewTransformer(n, w)
	if err != nil {
		panic(err)
	}
	return t
}

// N returns the raw series length the transformer accepts.
func (t *Transformer) N() int { return t.n }

// W returns the number of PAA segments the transformer emits.
func (t *Transformer) W() int { return t.w }

// SegmentLen returns the number of readings covered by segment i.
func (t *Transformer) SegmentLen(i int) int { return t.bounds[i+1] - t.bounds[i] }

// Transform computes the PAA signature of x into a freshly allocated slice.
func (t *Transformer) Transform(x []float64) []float64 {
	out := make([]float64, t.w)
	t.TransformInto(out, x)
	return out
}

// TransformInto computes the PAA signature of x into dst, which must have
// length w. It panics if len(x) != n, since feeding a series of the wrong
// length is a caller bug.
func (t *Transformer) TransformInto(dst, x []float64) {
	if len(x) != t.n {
		panic(fmt.Sprintf("paa: series length %d does not match transformer length %d", len(x), t.n))
	}
	if len(dst) != t.w {
		panic(fmt.Sprintf("paa: destination length %d does not match segment count %d", len(dst), t.w))
	}
	for i := 0; i < t.w; i++ {
		lo, hi := t.bounds[i], t.bounds[i+1]
		var s float64
		for j := lo; j < hi; j++ {
			s += x[j]
		}
		dst[i] = s / float64(hi-lo)
	}
}

// LowerBoundDist returns the classic PAA lower bound on the Euclidean
// distance between the two raw series whose PAA signatures are a and b:
//
//	sqrt(n/w) * ED(a, b) <= ED(X, Y)
//
// The bound holds exactly when w divides n; for fractional segmentations it
// uses the per-segment lengths and remains a valid lower bound. It is used
// by the Odyssey-style exact engine to prune candidates.
func (t *Transformer) LowerBoundDist(a, b []float64) float64 {
	return math.Sqrt(t.LowerBoundSqDist(a, b))
}

// LowerBoundSqDist is LowerBoundDist without the final square root, for use
// against squared-distance thresholds.
func (t *Transformer) LowerBoundSqDist(a, b []float64) float64 {
	var s float64
	for i := 0; i < t.w; i++ {
		d := a[i] - b[i]
		s += float64(t.SegmentLen(i)) * d * d
	}
	return s
}
