package centroid

import (
	"math/rand/v2"
	"sort"
	"testing"

	"climber/internal/metric"
	"climber/internal/pivot"
)

func params() Params {
	return Params{SampleRate: 0.1, Capacity: 100, Epsilon: 1, MaxCentroids: 0}
}

func TestComputePicksMostFrequentFirst(t *testing.T) {
	list := []SigFreq{
		{pivot.Signature{1, 2, 3}, 50},
		{pivot.Signature{4, 5, 6}, 500},
		{pivot.Signature{7, 8, 9}, 100},
	}
	got, err := Compute(list, params())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || !got[0].Equal(pivot.Signature{4, 5, 6}) {
		t.Fatalf("first centroid = %v, want <4,5,6>", got)
	}
}

func TestComputeSkipsTooCloseCandidates(t *testing.T) {
	p := params()
	p.Epsilon = 2 // candidates with OD < 2 to an existing centroid are skipped
	list := []SigFreq{
		{pivot.Signature{1, 2, 3}, 500},
		{pivot.Signature{1, 2, 4}, 400}, // OD to first = 1 < 2: skipped
		{pivot.Signature{7, 8, 9}, 300}, // OD = 3: kept
	}
	got, err := Compute(list, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d centroids, want 2: %v", len(got), got)
	}
	if !got[1].Equal(pivot.Signature{7, 8, 9}) {
		t.Fatalf("second centroid = %v, want <7,8,9>", got[1])
	}
}

func TestComputeStopsAtTinyGroups(t *testing.T) {
	p := params()
	p.SampleRate = 1.0
	p.Capacity = 1000 // threshold α·c = 1000
	list := []SigFreq{
		{pivot.Signature{1, 2, 3}, 5000},
		{pivot.Signature{4, 5, 6}, 10}, // est = 10 + small share < 1000: stop
		{pivot.Signature{7, 8, 9}, 5},
	}
	got, err := Compute(list, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("got %d centroids, want 1 (tiny-group stop): %v", len(got), got)
	}
}

func TestComputeRespectsMaxCentroids(t *testing.T) {
	p := params()
	p.MaxCentroids = 2
	var list []SigFreq
	for i := 0; i < 10; i++ {
		list = append(list, SigFreq{pivot.Signature{i * 3, i*3 + 1, i*3 + 2}, 1000 - i})
	}
	got, err := Compute(list, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d centroids, want MaxCentroids = 2", len(got))
	}
}

// Selected centroids must be pairwise at least epsilon apart in OD — the
// coverage guarantee Algorithm 2 exists to provide.
func TestComputeCentroidSeparationProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 7))
	for trial := 0; trial < 20; trial++ {
		var list []SigFreq
		seen := map[string]bool{}
		for i := 0; i < 200; i++ {
			var ids []int
			used := map[int]bool{}
			for len(ids) < 4 {
				v := rng.IntN(30)
				if !used[v] {
					used[v] = true
					ids = append(ids, v)
				}
			}
			sort.Ints(ids)
			sig := pivot.Signature(ids)
			if seen[sig.Key()] {
				continue
			}
			seen[sig.Key()] = true
			list = append(list, SigFreq{sig, 1 + rng.IntN(1000)})
		}
		p := Params{SampleRate: 0.05, Capacity: 50, Epsilon: 2}
		got, err := Compute(list, p)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < len(got); i++ {
			for j := i + 1; j < len(got); j++ {
				if od := metric.OverlapDist(got[i], got[j]); od < p.Epsilon {
					t.Fatalf("centroids %v and %v at OD %d < epsilon %d", got[i], got[j], od, p.Epsilon)
				}
			}
		}
	}
}

func TestComputeDeterministic(t *testing.T) {
	list := []SigFreq{
		{pivot.Signature{1, 2, 3}, 100},
		{pivot.Signature{4, 5, 6}, 100}, // equal freq: tie broken by key
		{pivot.Signature{7, 8, 9}, 100},
	}
	a, err := Compute(list, params())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compute(list, params())
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("non-deterministic centroid count")
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatal("non-deterministic centroid order")
		}
	}
}

func TestComputeValidation(t *testing.T) {
	list := []SigFreq{{pivot.Signature{1, 2}, 1}}
	bad := []Params{
		{SampleRate: 0, Capacity: 10, Epsilon: 1},
		{SampleRate: 2, Capacity: 10, Epsilon: 1},
		{SampleRate: 0.5, Capacity: 0, Epsilon: 1},
		{SampleRate: 0.5, Capacity: 10, Epsilon: -1},
		{SampleRate: 0.5, Capacity: 10, Epsilon: 1, MaxCentroids: -2},
	}
	for i, p := range bad {
		if _, err := Compute(list, p); err == nil {
			t.Errorf("params %d should fail validation", i)
		}
	}
	if _, err := Compute(nil, params()); err == nil {
		t.Error("empty list should fail")
	}
	mixed := []SigFreq{{pivot.Signature{1, 2}, 1}, {pivot.Signature{1, 2, 3}, 1}}
	if _, err := Compute(mixed, params()); err == nil {
		t.Error("mixed lengths should fail")
	}
	neg := []SigFreq{{pivot.Signature{1, 2}, -5}}
	if _, err := Compute(neg, params()); err == nil {
		t.Error("negative freq should fail")
	}
}

func TestComputeDoesNotMutateInput(t *testing.T) {
	list := []SigFreq{
		{pivot.Signature{1, 2, 3}, 10},
		{pivot.Signature{4, 5, 6}, 20},
	}
	if _, err := Compute(list, params()); err != nil {
		t.Fatal(err)
	}
	if list[0].Freq != 10 || !list[0].Sig.Equal(pivot.Signature{1, 2, 3}) {
		t.Fatal("Compute reordered or mutated its input")
	}
}
