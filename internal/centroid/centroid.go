// Package centroid implements Algorithm 2 of the paper: the data-driven
// computation of group centroids from the frequency-aggregated
// rank-insensitive signatures of a partition-level sample (Section V,
// Step 2).
//
// The intuition: pick centroids that (a) have high membership — the most
// frequent signatures first — and (b) cover the space well — a candidate too
// close (in Overlap Distance) to an existing centroid is skipped. Selection
// stops when the estimated group size of the next candidate falls below the
// sample-scaled capacity threshold (avoiding tiny groups), or when the
// optional MaxCentroids cap is reached.
package centroid

import (
	"fmt"
	"sort"

	"climber/internal/metric"
	"climber/internal/pivot"
)

// SigFreq pairs a rank-insensitive signature with its occurrence frequency
// in the sample (the list L of Algorithm 2).
type SigFreq struct {
	Sig  pivot.Signature
	Freq int
}

// Params configures Algorithm 2.
type Params struct {
	// SampleRate is α, the fraction of the dataset the signatures were
	// computed from, in (0, 1].
	SampleRate float64
	// Capacity is c, the storage-partition capacity in records.
	Capacity int
	// Epsilon is the minimum Overlap Distance allowed between two
	// centroids; candidates closer than this to an existing centroid are
	// skipped (Algorithm 2, Lines 5-9).
	Epsilon int
	// MaxCentroids optionally caps the number of centroids (Lines 15-16);
	// 0 means unlimited.
	MaxCentroids int
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.SampleRate <= 0 || p.SampleRate > 1 {
		return fmt.Errorf("centroid: sample rate must be in (0, 1], got %g", p.SampleRate)
	}
	if p.Capacity <= 0 {
		return fmt.Errorf("centroid: capacity must be positive, got %d", p.Capacity)
	}
	if p.Epsilon < 0 {
		return fmt.Errorf("centroid: epsilon must be non-negative, got %d", p.Epsilon)
	}
	if p.MaxCentroids < 0 {
		return fmt.Errorf("centroid: max centroids must be non-negative, got %d", p.MaxCentroids)
	}
	return nil
}

// Compute runs Algorithm 2 and returns the selected centroids in selection
// order. The special fall-back centroid (the paper's <*,*,...> group G0) is
// *not* included — the caller (package grouping) represents it implicitly as
// group 0.
//
// The input list is not modified.
func Compute(list []SigFreq, p Params) ([]pivot.Signature, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(list) == 0 {
		return nil, fmt.Errorf("centroid: empty signature list")
	}
	m := len(list[0].Sig)
	for _, sf := range list {
		if len(sf.Sig) != m {
			return nil, fmt.Errorf("centroid: mixed signature lengths %d and %d", m, len(sf.Sig))
		}
		if sf.Freq < 0 {
			return nil, fmt.Errorf("centroid: negative frequency for %v", sf.Sig)
		}
	}

	// Line 2: sort L descending by frequency. Ties break by signature key
	// so the selection is deterministic.
	l := make([]SigFreq, len(list))
	copy(l, list)
	sort.Slice(l, func(i, j int) bool {
		if l[i].Freq != l[j].Freq {
			return l[i].Freq > l[j].Freq
		}
		return l[i].Sig.Key() < l[j].Sig.Key()
	})

	var total int
	for _, sf := range l {
		total += sf.Freq
	}

	// Line 3: the most frequent signature seeds the centroid list.
	centroids := []pivot.Signature{l[0].Sig.Clone()}
	chosenFreq := l[0].Freq

	threshold := p.SampleRate * float64(p.Capacity)

candidates:
	for i := 1; i < len(l); i++ {
		if p.MaxCentroids > 0 && len(centroids) >= p.MaxCentroids {
			break // Lines 15-16
		}
		// Lines 5-9: skip candidates too close to an existing centroid.
		for _, c := range centroids {
			if metric.OverlapDist(l[i].Sig, c) < p.Epsilon {
				continue candidates
			}
		}
		// Lines 10-13: stop once the expected group size drops below the
		// sample-scaled capacity — remaining candidates are rarer still
		// (the list is sorted), so no later candidate can qualify.
		remaining := total - chosenFreq - l[i].Freq
		if remaining < 0 {
			remaining = 0
		}
		sizeEst := float64(l[i].Freq) + float64(remaining)/float64(len(centroids)+1)
		if sizeEst < threshold {
			break
		}
		centroids = append(centroids, l[i].Sig.Clone()) // Line 14
		chosenFreq += l[i].Freq
	}
	return centroids, nil
}
