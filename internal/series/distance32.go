package series

import (
	"encoding/binary"
	"math"
)

// Float32 scan kernels: the zero-copy companions of the blocked float64
// kernels in distance.go. Partition files store readings as little-endian
// float32, and the memory-resident read path scans them straight out of the
// mapped (or loaded) file bytes — no per-record []float64 decode, no
// allocation. The query is converted once per query with ToFloat32; each
// reading is decoded inline, the subtraction runs in float32 (the storage
// precision — the on-disk readings never had more), and the squared
// differences are accumulated in float64 lanes so long series do not lose
// low-order bits to a float32 accumulator.
//
// Accuracy: relative to the float64 decode path (which subtracts a float64
// query from widened float32 readings), these kernels additionally round the
// query to float32 before subtracting. Both paths already incur the float32
// storage rounding; see ARCHITECTURE.md "Memory-resident read path" for the
// measured impact. Within this file the kernels are deterministic: blocked
// and early-abandoning variants see the same additions in the same order, so
// results are bit-identical across every storage backend feeding them the
// same bytes.

// ToFloat32 converts a float64 query vector to the float32 precision the
// partition files store, once per query, for use with the *32Blocked kernels.
func ToFloat32(x []float64) []float32 {
	out := make([]float32, len(x))
	for i, v := range x {
		out[i] = float32(v)
	}
	return out
}

// SqDist32Blocked returns the squared Euclidean distance between a float32
// query and one record's raw value bytes (len(rec) must be exactly
// 4*len(q) little-endian float32 readings; it panics otherwise, mirroring
// the length panic of the float64 kernels). Accumulation runs in distLanes
// independent float64 lanes folded once at the end, the same geometry as
// SqDistBlocked.
func SqDist32Blocked(q []float32, rec []byte) float64 {
	if len(rec) != 4*len(q) {
		panic("series: record bytes do not match query length")
	}
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+distLanes <= len(q); i += distLanes {
		o := 4 * i
		d0 := q[i] - math.Float32frombits(binary.LittleEndian.Uint32(rec[o:]))
		d1 := q[i+1] - math.Float32frombits(binary.LittleEndian.Uint32(rec[o+4:]))
		d2 := q[i+2] - math.Float32frombits(binary.LittleEndian.Uint32(rec[o+8:]))
		d3 := q[i+3] - math.Float32frombits(binary.LittleEndian.Uint32(rec[o+12:]))
		s0 += float64(d0) * float64(d0)
		s1 += float64(d1) * float64(d1)
		s2 += float64(d2) * float64(d2)
		s3 += float64(d3) * float64(d3)
	}
	for ; i < len(q); i++ {
		d := q[i] - math.Float32frombits(binary.LittleEndian.Uint32(rec[4*i:]))
		s0 += float64(d) * float64(d)
	}
	return (s0 + s1) + (s2 + s3)
}

// SqDistEarlyAbandon32Blocked is the early-abandoning companion of
// SqDist32Blocked: same lanes, limit checked once per abandonBlock readings.
// If abandoned, the returned value is some number > limit (not the true
// distance). When the limit is never crossed the result is bit-identical to
// SqDist32Blocked. It panics when len(rec) != 4*len(q).
func SqDistEarlyAbandon32Blocked(q []float32, rec []byte, limit float64) float64 {
	if len(rec) != 4*len(q) {
		panic("series: record bytes do not match query length")
	}
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+abandonBlock <= len(q); i += abandonBlock {
		for j := i; j < i+abandonBlock; j += distLanes {
			o := 4 * j
			d0 := q[j] - math.Float32frombits(binary.LittleEndian.Uint32(rec[o:]))
			d1 := q[j+1] - math.Float32frombits(binary.LittleEndian.Uint32(rec[o+4:]))
			d2 := q[j+2] - math.Float32frombits(binary.LittleEndian.Uint32(rec[o+8:]))
			d3 := q[j+3] - math.Float32frombits(binary.LittleEndian.Uint32(rec[o+12:]))
			s0 += float64(d0) * float64(d0)
			s1 += float64(d1) * float64(d1)
			s2 += float64(d2) * float64(d2)
			s3 += float64(d3) * float64(d3)
		}
		if s := (s0 + s1) + (s2 + s3); s > limit {
			return s
		}
	}
	for ; i+distLanes <= len(q); i += distLanes {
		o := 4 * i
		d0 := q[i] - math.Float32frombits(binary.LittleEndian.Uint32(rec[o:]))
		d1 := q[i+1] - math.Float32frombits(binary.LittleEndian.Uint32(rec[o+4:]))
		d2 := q[i+2] - math.Float32frombits(binary.LittleEndian.Uint32(rec[o+8:]))
		d3 := q[i+3] - math.Float32frombits(binary.LittleEndian.Uint32(rec[o+12:]))
		s0 += float64(d0) * float64(d0)
		s1 += float64(d1) * float64(d1)
		s2 += float64(d2) * float64(d2)
		s3 += float64(d3) * float64(d3)
	}
	for ; i < len(q); i++ {
		d := q[i] - math.Float32frombits(binary.LittleEndian.Uint32(rec[4*i:]))
		s0 += float64(d) * float64(d)
	}
	return (s0 + s1) + (s2 + s3)
}
