package series

import (
	"encoding/binary"
	"math"
	"math/rand/v2"
	"testing"
)

// encodeRec32 packs a float64 series into the raw record-value layout the
// partition files use: little-endian float32, 4 bytes per reading.
func encodeRec32(vals []float64) []byte {
	out := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(float32(v)))
	}
	return out
}

// sqDist32Scalar is the reference semantics of the float32 kernels: both
// operands at float32 precision, subtraction in float32, accumulation of the
// widened squares in a single float64 — the scalar analogue the blocked
// kernel must match up to re-association.
func sqDist32Scalar(q []float32, rec []byte) float64 {
	var s float64
	for i, v := range q {
		d := v - math.Float32frombits(binary.LittleEndian.Uint32(rec[4*i:]))
		s += float64(d) * float64(d)
	}
	return s
}

// ToFloat32 is a pure element-wise float64→float32 rounding.
func TestToFloat32(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	x := randSeries(rng, 100)
	q := ToFloat32(x)
	if len(q) != len(x) {
		t.Fatalf("length %d, want %d", len(q), len(x))
	}
	for i, v := range x {
		if q[i] != float32(v) {
			t.Fatalf("element %d: got %v, want %v", i, q[i], float32(v))
		}
	}
}

// Property: the blocked float32 kernel computes the scalar float32 sum up to
// floating-point re-association, across sub-lane, sub-block, and multi-block
// lengths.
func TestSqDist32BlockedMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 41))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.IntN(300)
		x, y := randSeries(rng, n), randSeries(rng, n)
		q, rec := ToFloat32(x), encodeRec32(y)
		exact, blocked := sqDist32Scalar(q, rec), SqDist32Blocked(q, rec)
		if diff := math.Abs(blocked - exact); diff > 1e-9*math.Max(exact, 1) {
			t.Fatalf("trial %d (n=%d): blocked %v vs scalar %v (diff %v)", trial, n, blocked, exact, diff)
		}
	}
}

// Property: the float32 kernels agree with the float64 decode path (which
// widens stored float32 readings and subtracts a float64 query) to within
// the float32 rounding of the query — the accuracy contract the scan-path
// switch relies on. The bound is loose by design: it documents that the only
// divergence is query rounding, not a kernel bug.
func TestSqDist32BlockedNearFloat64Path(t *testing.T) {
	rng := rand.New(rand.NewPCG(43, 47))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.IntN(300)
		x, y := randSeries(rng, n), randSeries(rng, n)
		// The float64 decode path: stored readings widened to float64.
		wide := make([]float64, n)
		for i, v := range y {
			wide[i] = float64(float32(v))
		}
		f64 := SqDistBlocked(x, wide)
		f32 := SqDist32Blocked(ToFloat32(x), encodeRec32(y))
		// Relative error bounded by a few float32 ULPs per reading folded
		// through the sum of squares.
		if diff := math.Abs(f32 - f64); diff > 1e-5*math.Max(f64, 1) {
			t.Fatalf("trial %d (n=%d): float32 %v vs float64 path %v (diff %v)", trial, n, f32, f64, diff)
		}
	}
}

// Property: whenever the limit is never crossed, SqDistEarlyAbandon32Blocked
// must equal SqDist32Blocked bit for bit — identical lanes, identical
// addition order — mirroring the float64 blocked-kernel contract. This is
// what keeps anytime-search results independent of how tight the running
// bound happens to be when a record survives.
func TestSqDistEarlyAbandon32BlockedEqualsSqDist32Blocked(t *testing.T) {
	rng := rand.New(rand.NewPCG(53, 59))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.IntN(300)
		x, y := randSeries(rng, n), randSeries(rng, n)
		q, rec := ToFloat32(x), encodeRec32(y)
		exact := SqDist32Blocked(q, rec)

		for _, limit := range []float64{exact, exact * 1.5, exact + 1, math.Inf(1)} {
			if got := SqDistEarlyAbandon32Blocked(q, rec, limit); got != exact {
				t.Fatalf("trial %d (n=%d): limit %v not crossed but result %v != blocked exact %v", trial, n, limit, got, exact)
			}
		}

		if exact > 0 {
			limit := exact * rng.Float64() * 0.99
			if got := SqDistEarlyAbandon32Blocked(q, rec, limit); got <= limit {
				t.Fatalf("trial %d: abandoned result %v not above limit %v", trial, got, limit)
			}
		}
	}
}

// The float32 kernels reject record bytes that do not match the query length
// the same way the float64 kernels reject mismatched slices.
func TestSqDist32KernelsPanicOnLengthMismatch(t *testing.T) {
	rng := rand.New(rand.NewPCG(61, 67))
	x := randSeries(rng, 32)
	q := ToFloat32(x)
	shorter, longer := encodeRec32(randSeries(rng, 31)), encodeRec32(randSeries(rng, 33))
	kernels := map[string]func(rec []byte){
		"SqDist32Blocked":             func(rec []byte) { SqDist32Blocked(q, rec) },
		"SqDistEarlyAbandon32Blocked": func(rec []byte) { SqDistEarlyAbandon32Blocked(q, rec, math.Inf(1)) },
	}
	for name, kernel := range kernels {
		mustPanic(t, name+"/shorter-rec", func() { kernel(shorter) })
		mustPanic(t, name+"/longer-rec", func() { kernel(longer) })
	}
}

// BenchmarkSqDist32Blocked is the head-to-head against BenchmarkSqDistBlocked:
// same series length, but the operand is the raw 4-byte-per-reading record
// layout the mapped scan path feeds the kernel.
func BenchmarkSqDist32Blocked(b *testing.B) {
	x, y := benchPair(256)
	q, rec := ToFloat32(x), encodeRec32(y)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = SqDist32Blocked(q, rec)
	}
}

// BenchmarkSqDist32EarlyAbandonBlocked mirrors the float64 early-abandon
// benchmark's two regimes over the raw record layout.
func BenchmarkSqDist32EarlyAbandonBlocked(b *testing.B) {
	x, y := benchPair(256)
	q, rec := ToFloat32(x), encodeRec32(y)
	exact := SqDist32Blocked(q, rec)
	b.Run("loose-bound", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink = SqDistEarlyAbandon32Blocked(q, rec, exact+1)
		}
	})
	b.Run("tight-bound", func(b *testing.B) {
		limit := exact / 100
		for i := 0; i < b.N; i++ {
			benchSink = SqDistEarlyAbandon32Blocked(q, rec, limit)
		}
	})
}
