package series

import (
	"math"
	"math/rand/v2"
	"testing"
)

// randSeries draws a random series of length n from the given generator.
func randSeries(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64() * 10
	}
	return out
}

// Property: whenever the accumulation never crosses the threshold,
// SqDistEarlyAbandon must equal SqDist bit for bit — same accumulation
// order, so exact float64 equality, not epsilon equality. The early-abandon
// kernel is the hot inner loop of every scan; this is the contract that
// makes it a safe drop-in for the exact kernel.
func TestSqDistEarlyAbandonEqualsSqDist(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.IntN(256)
		x, y := randSeries(rng, n), randSeries(rng, n)
		exact := SqDist(x, y)

		// Any limit >= exact must never trigger the abandon path: the
		// partial sum is non-decreasing and bounded by the final value.
		for _, limit := range []float64{exact, exact * 1.5, exact + 1, math.Inf(1)} {
			if got := SqDistEarlyAbandon(x, y, limit); got != exact {
				t.Fatalf("trial %d: limit %v not crossed but result %v != exact %v", trial, limit, got, exact)
			}
		}

		// A limit below the true distance must abandon with some value
		// strictly above the limit (the only contract callers rely on).
		if exact > 0 {
			limit := exact * rng.Float64() * 0.99
			if got := SqDistEarlyAbandon(x, y, limit); got <= limit {
				t.Fatalf("trial %d: abandoned result %v not above limit %v", trial, got, limit)
			}
		}
	}
}

// Zero-distance pairs never abandon regardless of the limit.
func TestSqDistEarlyAbandonIdenticalSeries(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 5))
	x := randSeries(rng, 64)
	if got := SqDistEarlyAbandon(x, x, 0); got != 0 {
		t.Fatalf("identical series: got %v, want 0", got)
	}
}

// benchSink defeats dead-code elimination in the benchmarks below.
var benchSink float64

// benchPair builds one deterministic pair of paper-length series.
func benchPair(n int) ([]float64, []float64) {
	rng := rand.New(rand.NewPCG(42, 1))
	return randSeries(rng, n), randSeries(rng, n)
}

func BenchmarkSqDist(b *testing.B) {
	x, y := benchPair(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = SqDist(x, y)
	}
}

// BenchmarkSqDistEarlyAbandon measures the kernel under the two regimes a
// scan sees: a loose bound (no abandon, the kernel's overhead over SqDist)
// and a tight bound (abandons after a handful of readings, the payoff).
func BenchmarkSqDistEarlyAbandon(b *testing.B) {
	x, y := benchPair(256)
	exact := SqDist(x, y)
	b.Run("loose-bound", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink = SqDistEarlyAbandon(x, y, exact+1)
		}
	})
	b.Run("tight-bound", func(b *testing.B) {
		limit := exact / 100 // crossed within the first few readings
		for i := 0; i < b.N; i++ {
			benchSink = SqDistEarlyAbandon(x, y, limit)
		}
	})
}
