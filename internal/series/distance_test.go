package series

import (
	"math"
	"math/rand/v2"
	"testing"
)

// randSeries draws a random series of length n from the given generator.
func randSeries(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64() * 10
	}
	return out
}

// Property: whenever the accumulation never crosses the threshold,
// SqDistEarlyAbandon must equal SqDist bit for bit — same accumulation
// order, so exact float64 equality, not epsilon equality. The early-abandon
// kernel is the hot inner loop of every scan; this is the contract that
// makes it a safe drop-in for the exact kernel.
func TestSqDistEarlyAbandonEqualsSqDist(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.IntN(256)
		x, y := randSeries(rng, n), randSeries(rng, n)
		exact := SqDist(x, y)

		// Any limit >= exact must never trigger the abandon path: the
		// partial sum is non-decreasing and bounded by the final value.
		for _, limit := range []float64{exact, exact * 1.5, exact + 1, math.Inf(1)} {
			if got := SqDistEarlyAbandon(x, y, limit); got != exact {
				t.Fatalf("trial %d: limit %v not crossed but result %v != exact %v", trial, limit, got, exact)
			}
		}

		// A limit below the true distance must abandon with some value
		// strictly above the limit (the only contract callers rely on).
		if exact > 0 {
			limit := exact * rng.Float64() * 0.99
			if got := SqDistEarlyAbandon(x, y, limit); got <= limit {
				t.Fatalf("trial %d: abandoned result %v not above limit %v", trial, got, limit)
			}
		}
	}
}

// Zero-distance pairs never abandon regardless of the limit.
func TestSqDistEarlyAbandonIdenticalSeries(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 5))
	x := randSeries(rng, 64)
	if got := SqDistEarlyAbandon(x, x, 0); got != 0 {
		t.Fatalf("identical series: got %v, want 0", got)
	}
}

// mustPanic fails the test unless fn panics.
func mustPanic(t *testing.T, label string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic on mismatched lengths", label)
		}
	}()
	fn()
}

// Every distance kernel must reject mismatched lengths the same way SqDist
// does: a shorter y used to crash SqDistEarlyAbandon with a raw
// index-out-of-range, and a longer y silently ignored the tail — both are
// caller bugs that deserve the clear panic message.
func TestDistanceKernelsPanicOnLengthMismatch(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 2))
	x := randSeries(rng, 32)
	shorter, longer := randSeries(rng, 31), randSeries(rng, 33)
	kernels := map[string]func(y []float64){
		"SqDist":                    func(y []float64) { SqDist(x, y) },
		"SqDistEarlyAbandon":        func(y []float64) { SqDistEarlyAbandon(x, y, math.Inf(1)) },
		"SqDistBlocked":             func(y []float64) { SqDistBlocked(x, y) },
		"SqDistEarlyAbandonBlocked": func(y []float64) { SqDistEarlyAbandonBlocked(x, y, math.Inf(1)) },
	}
	for name, kernel := range kernels {
		mustPanic(t, name+"/shorter-y", func() { kernel(shorter) })
		mustPanic(t, name+"/longer-y", func() { kernel(longer) })
	}
}

// Property: the blocked kernel computes the same sum as the scalar kernel up
// to floating-point re-association — the lanes change the addition order, so
// equality is relative-epsilon, not bit-for-bit.
func TestSqDistBlockedMatchesSqDist(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 17))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.IntN(300) // covers sub-lane, sub-block, and multi-block lengths
		x, y := randSeries(rng, n), randSeries(rng, n)
		exact, blocked := SqDist(x, y), SqDistBlocked(x, y)
		if diff := math.Abs(blocked - exact); diff > 1e-9*math.Max(exact, 1) {
			t.Fatalf("trial %d (n=%d): blocked %v vs scalar %v (diff %v)", trial, n, blocked, exact, diff)
		}
	}
}

// Property: whenever the limit is never crossed, SqDistEarlyAbandonBlocked
// must equal SqDistBlocked bit for bit — identical lanes, identical addition
// order. This mirrors the SqDistEarlyAbandon==SqDist contract and is what
// makes the blocked early-abandon kernel a safe drop-in on the scan path.
func TestSqDistEarlyAbandonBlockedEqualsSqDistBlocked(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 29))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.IntN(300)
		x, y := randSeries(rng, n), randSeries(rng, n)
		exact := SqDistBlocked(x, y)

		for _, limit := range []float64{exact, exact * 1.5, exact + 1, math.Inf(1)} {
			if got := SqDistEarlyAbandonBlocked(x, y, limit); got != exact {
				t.Fatalf("trial %d (n=%d): limit %v not crossed but result %v != blocked exact %v", trial, n, limit, got, exact)
			}
		}

		// A limit below the blocked sum must yield some value strictly above
		// the limit — either an abandoned partial sum or the full sum.
		if exact > 0 {
			limit := exact * rng.Float64() * 0.99
			if got := SqDistEarlyAbandonBlocked(x, y, limit); got <= limit {
				t.Fatalf("trial %d: abandoned result %v not above limit %v", trial, got, limit)
			}
		}
	}
}

// benchSink defeats dead-code elimination in the benchmarks below.
var benchSink float64

// benchPair builds one deterministic pair of paper-length series.
func benchPair(n int) ([]float64, []float64) {
	rng := rand.New(rand.NewPCG(42, 1))
	return randSeries(rng, n), randSeries(rng, n)
}

func BenchmarkSqDist(b *testing.B) {
	x, y := benchPair(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = SqDist(x, y)
	}
}

// BenchmarkSqDistEarlyAbandon measures the kernel under the two regimes a
// scan sees: a loose bound (no abandon, the kernel's overhead over SqDist)
// and a tight bound (abandons after a handful of readings, the payoff).
func BenchmarkSqDistEarlyAbandon(b *testing.B) {
	x, y := benchPair(256)
	exact := SqDist(x, y)
	b.Run("loose-bound", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink = SqDistEarlyAbandon(x, y, exact+1)
		}
	})
	b.Run("tight-bound", func(b *testing.B) {
		limit := exact / 100 // crossed within the first few readings
		for i := 0; i < b.N; i++ {
			benchSink = SqDistEarlyAbandon(x, y, limit)
		}
	})
}

// BenchmarkSqDistBlocked is the head-to-head against BenchmarkSqDist: the
// lane decomposition should win on any hardware with more than one FP
// pipeline, which is what the scan path cares about.
func BenchmarkSqDistBlocked(b *testing.B) {
	x, y := benchPair(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = SqDistBlocked(x, y)
	}
}

// BenchmarkSqDistEarlyAbandonBlocked measures the blocked early-abandon
// kernel in the same two regimes as the scalar benchmark. Loose bound (the
// dominant regime of a scan: most candidates survive deep into the series)
// is where blocking pays; tight bound compares at least one full abandon
// block against the scalar kernel's first few readings — the price of
// amortising the limit check.
func BenchmarkSqDistEarlyAbandonBlocked(b *testing.B) {
	x, y := benchPair(256)
	exact := SqDist(x, y)
	b.Run("loose-bound", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink = SqDistEarlyAbandonBlocked(x, y, exact+1)
		}
	})
	b.Run("tight-bound", func(b *testing.B) {
		limit := exact / 100
		for i := 0; i < b.N; i++ {
			benchSink = SqDistEarlyAbandonBlocked(x, y, limit)
		}
	})
}
