package series

import "sort"

// Result is one kNN answer: the ID of a data series and its (squared or
// plain, per the producer's contract) Euclidean distance to the query.
type Result struct {
	ID   int
	Dist float64
}

// TopK is a bounded max-heap that keeps the k smallest-distance results seen
// so far. It is the accumulator behind every kNN scan in the repository:
// exact scans (Dss), partition-local scans (CLIMBER), and baseline searches.
// The zero value is not usable; construct with NewTopK.
type TopK struct {
	k    int
	heap []Result // max-heap ordered by Dist
}

// NewTopK returns an accumulator for the k nearest results. k must be
// positive.
func NewTopK(k int) *TopK {
	if k <= 0 {
		panic("series: TopK requires k > 0")
	}
	return &TopK{k: k, heap: make([]Result, 0, k)}
}

// K returns the configured answer size.
func (t *TopK) K() int { return t.k }

// Len returns the number of results currently held (<= k).
func (t *TopK) Len() int { return len(t.heap) }

// Full reports whether k results have been accumulated.
func (t *TopK) Full() bool { return len(t.heap) == t.k }

// Bound returns the current k-th smallest distance, i.e. the admission
// threshold for new candidates. If fewer than k results are held, it returns
// +Inf semantics via the ok flag: ok is false and the caller must admit the
// candidate unconditionally.
func (t *TopK) Bound() (bound float64, ok bool) {
	if len(t.heap) < t.k {
		return 0, false
	}
	return t.heap[0].Dist, true
}

// Push offers a candidate. It returns true if the candidate was admitted
// (it was among the k smallest seen so far).
func (t *TopK) Push(id int, dist float64) bool {
	if len(t.heap) < t.k {
		t.heap = append(t.heap, Result{ID: id, Dist: dist})
		t.siftUp(len(t.heap) - 1)
		return true
	}
	if dist >= t.heap[0].Dist {
		return false
	}
	t.heap[0] = Result{ID: id, Dist: dist}
	t.siftDown(0)
	return true
}

// Results returns the accumulated results sorted by ascending distance,
// ties broken by ascending ID for determinism. The accumulator remains
// usable after the call.
func (t *TopK) Results() []Result {
	out := make([]Result, len(t.heap))
	copy(out, t.heap)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Merge folds every result held by other into t. It is used to combine
// per-worker accumulators after a parallel scan.
func (t *TopK) Merge(other *TopK) {
	for _, r := range other.heap {
		t.Push(r.ID, r.Dist)
	}
}

func (t *TopK) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if t.heap[parent].Dist >= t.heap[i].Dist {
			return
		}
		t.heap[parent], t.heap[i] = t.heap[i], t.heap[parent]
		i = parent
	}
}

func (t *TopK) siftDown(i int) {
	n := len(t.heap)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && t.heap[l].Dist > t.heap[largest].Dist {
			largest = l
		}
		if r < n && t.heap[r].Dist > t.heap[largest].Dist {
			largest = r
		}
		if largest == i {
			return
		}
		t.heap[i], t.heap[largest] = t.heap[largest], t.heap[i]
		i = largest
	}
}

// Recall computes |approx ∩ exact| / |exact| (paper Definition 4, Equation 2).
// Membership is decided by result ID. The exact set is the ground truth
// produced by an exact scan; approx is the approximate answer set.
func Recall(approx, exact []Result) float64 {
	if len(exact) == 0 {
		return 0
	}
	in := make(map[int]struct{}, len(exact))
	for _, r := range exact {
		in[r.ID] = struct{}{}
	}
	var hit int
	for _, r := range approx {
		if _, ok := in[r.ID]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(exact))
}
