package series

import (
	"math/rand/v2"
	"sort"
	"testing"
)

func TestTopKBasic(t *testing.T) {
	top := NewTopK(3)
	for i, d := range []float64{5, 1, 4, 2, 8, 3} {
		top.Push(i, d)
	}
	got := top.Results()
	want := []Result{{1, 1}, {3, 2}, {5, 3}}
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("result %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestTopKFewerThanK(t *testing.T) {
	top := NewTopK(10)
	top.Push(1, 2.0)
	top.Push(2, 1.0)
	got := top.Results()
	if len(got) != 2 || got[0].ID != 2 || got[1].ID != 1 {
		t.Fatalf("Results = %+v, want [{2 1} {1 2}]", got)
	}
	if top.Full() {
		t.Fatal("TopK with 2/10 entries reports Full")
	}
	if _, ok := top.Bound(); ok {
		t.Fatal("Bound ok = true before the heap is full")
	}
}

func TestTopKBound(t *testing.T) {
	top := NewTopK(2)
	top.Push(0, 5)
	top.Push(1, 3)
	b, ok := top.Bound()
	if !ok || b != 5 {
		t.Fatalf("Bound = %g, %v, want 5, true", b, ok)
	}
	if top.Push(2, 6) {
		t.Fatal("Push above bound was admitted")
	}
	if !top.Push(3, 1) {
		t.Fatal("Push below bound was rejected")
	}
	b, _ = top.Bound()
	if b != 3 {
		t.Fatalf("Bound after displacement = %g, want 3", b)
	}
}

func TestTopKInvalidK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTopK(0) did not panic")
		}
	}()
	NewTopK(0)
}

// Property: TopK must agree with sorting the full candidate list.
func TestTopKMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.IntN(200)
		k := 1 + rng.IntN(20)
		dists := make([]float64, n)
		top := NewTopK(k)
		for i := range dists {
			dists[i] = rng.Float64() * 100
			top.Push(i, dists[i])
		}
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i
		}
		sort.Slice(ids, func(a, b int) bool {
			if dists[ids[a]] != dists[ids[b]] {
				return dists[ids[a]] < dists[ids[b]]
			}
			return ids[a] < ids[b]
		})
		want := ids
		if n > k {
			want = ids[:k]
		}
		got := top.Results()
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d results, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i].ID != want[i] {
				t.Fatalf("trial %d: result %d = id %d, want id %d", trial, i, got[i].ID, want[i])
			}
		}
	}
}

func TestTopKMerge(t *testing.T) {
	a, b := NewTopK(3), NewTopK(3)
	a.Push(0, 1)
	a.Push(1, 9)
	b.Push(2, 2)
	b.Push(3, 3)
	a.Merge(b)
	got := a.Results()
	wantIDs := []int{0, 2, 3}
	for i, id := range wantIDs {
		if got[i].ID != id {
			t.Fatalf("merged results = %+v, want ids %v", got, wantIDs)
		}
	}
}

func TestRecall(t *testing.T) {
	exact := []Result{{1, 0}, {2, 0}, {3, 0}, {4, 0}}
	approx := []Result{{2, 0}, {4, 0}, {9, 0}, {10, 0}}
	if got := Recall(approx, exact); got != 0.5 {
		t.Fatalf("Recall = %g, want 0.5", got)
	}
	if got := Recall(nil, exact); got != 0 {
		t.Fatalf("Recall of empty approx = %g, want 0", got)
	}
	if got := Recall(approx, nil); got != 0 {
		t.Fatalf("Recall with empty exact = %g, want 0", got)
	}
	if got := Recall(exact, exact); got != 1 {
		t.Fatalf("self Recall = %g, want 1", got)
	}
}
