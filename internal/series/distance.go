package series

import "math"

// Dist returns the Euclidean distance between two equal-length series
// (paper Definition 3). It panics if the lengths differ, because comparing
// series of different lengths is a programming error in every caller.
func Dist(x, y []float64) float64 {
	return math.Sqrt(SqDist(x, y))
}

// SqDist returns the squared Euclidean distance between two equal-length
// series. Working with squared distances avoids the square root in hot loops
// such as pivot ranking and kNN scans; ordering is preserved.
func SqDist(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("series: distance between series of different lengths")
	}
	var s float64
	for i, v := range x {
		d := v - y[i]
		s += d * d
	}
	return s
}

// SqDistEarlyAbandon returns the squared Euclidean distance between x and y,
// abandoning the accumulation as soon as it exceeds limit. If abandoned, the
// returned value is some number > limit (not the true distance). This is the
// classic early-abandoning optimisation used by data-series scans: a record
// that cannot enter the current top-k is rejected in O(first few readings).
// Like SqDist it panics when the lengths differ.
func SqDistEarlyAbandon(x, y []float64, limit float64) float64 {
	if len(x) != len(y) {
		panic("series: distance between series of different lengths")
	}
	var s float64
	for i, v := range x {
		d := v - y[i]
		s += d * d
		if s > limit {
			return s
		}
	}
	return s
}

// Blocked-kernel geometry. The lane count breaks the floating-point
// dependency chain of the scalar loop into independent accumulators the
// compiler can keep in separate registers (and auto-vectorise); the abandon
// block is how many readings SqDistEarlyAbandonBlocked compares between
// limit checks, amortising the branch that the scalar kernel pays per
// element.
const (
	distLanes    = 4
	abandonBlock = 32
)

// SqDistBlocked is SqDist restructured for vectorisation: the accumulation
// runs in distLanes independent lanes folded once at the end. It panics when
// the lengths differ. The result is the same sum in a different association
// order, so it can differ from SqDist in the last few ULPs — callers that
// pin answers bit-for-bit must compare against the same kernel.
func SqDistBlocked(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("series: distance between series of different lengths")
	}
	y = y[:len(x)] // bounds-check elimination hint
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+distLanes <= len(x); i += distLanes {
		d0 := x[i] - y[i]
		d1 := x[i+1] - y[i+1]
		d2 := x[i+2] - y[i+2]
		d3 := x[i+3] - y[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < len(x); i++ {
		d := x[i] - y[i]
		s0 += d * d
	}
	return (s0 + s1) + (s2 + s3)
}

// SqDistEarlyAbandonBlocked is the early-abandoning companion of
// SqDistBlocked: it accumulates in the same independent lanes and checks the
// limit once per abandonBlock readings instead of once per element, so the
// common no-abandon path runs at the blocked kernel's speed. If abandoned,
// the returned value is some number > limit (not the true distance). When
// the limit is never crossed the result is bit-identical to SqDistBlocked —
// the lanes see the same additions in the same order. It panics when the
// lengths differ.
func SqDistEarlyAbandonBlocked(x, y []float64, limit float64) float64 {
	if len(x) != len(y) {
		panic("series: distance between series of different lengths")
	}
	y = y[:len(x)] // bounds-check elimination hint
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+abandonBlock <= len(x); i += abandonBlock {
		for j := i; j < i+abandonBlock; j += distLanes {
			d0 := x[j] - y[j]
			d1 := x[j+1] - y[j+1]
			d2 := x[j+2] - y[j+2]
			d3 := x[j+3] - y[j+3]
			s0 += d0 * d0
			s1 += d1 * d1
			s2 += d2 * d2
			s3 += d3 * d3
		}
		if s := (s0 + s1) + (s2 + s3); s > limit {
			return s
		}
	}
	for ; i+distLanes <= len(x); i += distLanes {
		d0 := x[i] - y[i]
		d1 := x[i+1] - y[i+1]
		d2 := x[i+2] - y[i+2]
		d3 := x[i+3] - y[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < len(x); i++ {
		d := x[i] - y[i]
		s0 += d * d
	}
	return (s0 + s1) + (s2 + s3)
}
