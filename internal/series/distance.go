package series

import "math"

// Dist returns the Euclidean distance between two equal-length series
// (paper Definition 3). It panics if the lengths differ, because comparing
// series of different lengths is a programming error in every caller.
func Dist(x, y []float64) float64 {
	return math.Sqrt(SqDist(x, y))
}

// SqDist returns the squared Euclidean distance between two equal-length
// series. Working with squared distances avoids the square root in hot loops
// such as pivot ranking and kNN scans; ordering is preserved.
func SqDist(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("series: distance between series of different lengths")
	}
	var s float64
	for i, v := range x {
		d := v - y[i]
		s += d * d
	}
	return s
}

// SqDistEarlyAbandon returns the squared Euclidean distance between x and y,
// abandoning the accumulation as soon as it exceeds limit. If abandoned, the
// returned value is some number > limit (not the true distance). This is the
// classic early-abandoning optimisation used by data-series scans: a record
// that cannot enter the current top-k is rejected in O(first few readings).
func SqDistEarlyAbandon(x, y []float64, limit float64) float64 {
	var s float64
	for i, v := range x {
		d := v - y[i]
		s += d * d
		if s > limit {
			return s
		}
	}
	return s
}
