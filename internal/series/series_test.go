package series

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestDatasetAppendGet(t *testing.T) {
	d := NewDataset(3)
	if got := d.Len(); got != 0 {
		t.Fatalf("empty dataset Len = %d, want 0", got)
	}
	id0 := d.Append([]float64{1, 2, 3})
	id1 := d.Append([]float64{4, 5, 6})
	if id0 != 0 || id1 != 1 {
		t.Fatalf("Append ids = %d, %d, want 0, 1", id0, id1)
	}
	if got := d.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	if got := d.Get(1); got[0] != 4 || got[1] != 5 || got[2] != 6 {
		t.Fatalf("Get(1) = %v, want [4 5 6]", got)
	}
	if got := d.Length(); got != 3 {
		t.Fatalf("Length = %d, want 3", got)
	}
}

func TestDatasetAppendWrongLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("appending wrong-length series did not panic")
		}
	}()
	NewDataset(3).Append([]float64{1, 2})
}

func TestNewDatasetInvalidLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDataset(0) did not panic")
		}
	}()
	NewDataset(0)
}

func TestDatasetAppendFlat(t *testing.T) {
	d := NewDataset(2)
	d.AppendFlat([]float64{1, 2, 3, 4, 5, 6})
	if d.Len() != 3 {
		t.Fatalf("Len = %d, want 3", d.Len())
	}
	if got := d.Get(2); got[0] != 5 || got[1] != 6 {
		t.Fatalf("Get(2) = %v, want [5 6]", got)
	}
}

func TestDatasetAppendFlatMisaligned(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("misaligned AppendFlat did not panic")
		}
	}()
	NewDataset(2).AppendFlat([]float64{1, 2, 3})
}

func TestDatasetSlice(t *testing.T) {
	d := NewDataset(2)
	for i := 0; i < 5; i++ {
		d.Append([]float64{float64(i), float64(i * 10)})
	}
	v := d.Slice(1, 4)
	if v.Len() != 3 {
		t.Fatalf("view Len = %d, want 3", v.Len())
	}
	if got := v.Get(0); got[0] != 1 || got[1] != 10 {
		t.Fatalf("view Get(0) = %v, want [1 10]", got)
	}
}

func TestDistKnownValues(t *testing.T) {
	cases := []struct {
		x, y []float64
		want float64
	}{
		{[]float64{0, 0}, []float64{3, 4}, 5},
		{[]float64{1, 1, 1}, []float64{1, 1, 1}, 0},
		{[]float64{1}, []float64{-1}, 2},
	}
	for _, c := range cases {
		if got := Dist(c.x, c.y); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Dist(%v, %v) = %g, want %g", c.x, c.y, got, c.want)
		}
	}
}

func TestDistMismatchedLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dist with mismatched lengths did not panic")
		}
	}()
	Dist([]float64{1, 2}, []float64{1})
}

// Euclidean distance must satisfy the metric postulates the pivot-permutation
// technique relies on (paper Section IV-A): non-negativity, identity,
// symmetry, and the triangle inequality.
func TestDistMetricPostulates(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	vec := func() []float64 {
		v := make([]float64, 8)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		return v
	}
	for iter := 0; iter < 200; iter++ {
		x, y, z := vec(), vec(), vec()
		dxy, dyx := Dist(x, y), Dist(y, x)
		if dxy < 0 {
			t.Fatalf("negative distance %g", dxy)
		}
		if math.Abs(dxy-dyx) > 1e-9 {
			t.Fatalf("asymmetric distance: %g vs %g", dxy, dyx)
		}
		if got := Dist(x, x); got != 0 {
			t.Fatalf("Dist(x, x) = %g, want 0", got)
		}
		if Dist(x, z) > dxy+Dist(y, z)+1e-9 {
			t.Fatalf("triangle inequality violated")
		}
	}
}

func TestSqDistEarlyAbandon(t *testing.T) {
	x := []float64{0, 0, 0, 0}
	y := []float64{10, 10, 10, 10}
	got := SqDistEarlyAbandon(x, y, 50)
	if got <= 50 {
		t.Fatalf("early abandon returned %g, want value > limit 50", got)
	}
	// Under the limit the exact value must be returned.
	if got := SqDistEarlyAbandon(x, y, 1e9); got != 400 {
		t.Fatalf("non-abandoned distance = %g, want 400", got)
	}
}

func TestSqDistEarlyAbandonMatchesExact(t *testing.T) {
	f := func(ax, ay [6]float64) bool {
		x, y := boundVec(ax[:]), boundVec(ay[:])
		exact := SqDist(x, y)
		got := SqDistEarlyAbandon(x, y, exact+1)
		return math.Abs(got-exact) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// boundVec maps arbitrary quick-generated floats into a numerically sane
// range so property tests exercise logic rather than float64 overflow.
func boundVec(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			x = 0
		}
		out[i] = math.Mod(x, 1000)
	}
	return out
}

func TestZNormalize(t *testing.T) {
	x := []float64{2, 4, 6, 8}
	ZNormalize(x)
	if m := Mean(x); math.Abs(m) > 1e-12 {
		t.Fatalf("mean after z-norm = %g, want 0", m)
	}
	if sd := StdDev(x); math.Abs(sd-1) > 1e-12 {
		t.Fatalf("stddev after z-norm = %g, want 1", sd)
	}
}

func TestZNormalizeConstantSeries(t *testing.T) {
	x := []float64{5, 5, 5}
	ZNormalize(x)
	for _, v := range x {
		if v != 0 {
			t.Fatalf("constant series z-norm = %v, want all zeros", x)
		}
	}
}

func TestZNormalizedDoesNotMutate(t *testing.T) {
	x := []float64{1, 2, 3}
	_ = ZNormalized(x)
	if x[0] != 1 || x[1] != 2 || x[2] != 3 {
		t.Fatalf("ZNormalized mutated its input: %v", x)
	}
}

func TestZNormalizeProperty(t *testing.T) {
	f := func(a [16]float64) bool {
		x := boundVec(a[:])
		ZNormalize(x)
		m, sd := Mean(x), StdDev(x)
		// Either degenerate (all zeros) or properly normalised.
		return (math.Abs(m) < 1e-6 && (math.Abs(sd-1) < 1e-6 || sd == 0))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanStdDevEmpty(t *testing.T) {
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("Mean/StdDev of empty slice should be 0")
	}
}
