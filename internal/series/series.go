// Package series provides the fundamental data-series types and distance
// primitives used throughout CLIMBER (paper Section III-A, Definitions 1-3).
//
// A data series X = [x1, x2, ..., xn] is an ordered sequence of real-valued
// readings; a series of length n is a point in an n-dimensional space. A
// Dataset is a collection of same-length series stored in one flat backing
// slice so that millions of series stay cache- and GC-friendly.
package series

import (
	"fmt"
	"math"
)

// Dataset is a collection of data series, all of the same length
// (paper Definition 2). Series are identified by their position: the i-th
// appended series has ID i. The backing storage is a single flat slice.
type Dataset struct {
	length int
	vals   []float64
}

// NewDataset returns an empty dataset for series of the given length.
// It panics if length is not positive, since a zero-length series is
// meaningless in every CLIMBER code path.
func NewDataset(length int) *Dataset {
	if length <= 0 {
		panic(fmt.Sprintf("series: dataset length must be positive, got %d", length))
	}
	return &Dataset{length: length}
}

// NewDatasetCap returns an empty dataset with capacity pre-allocated for n
// series of the given length.
func NewDatasetCap(length, n int) *Dataset {
	d := NewDataset(length)
	d.vals = make([]float64, 0, length*n)
	return d
}

// Length reports the length n of each series in the dataset.
func (d *Dataset) Length() int { return d.length }

// Len reports the number of series currently stored.
func (d *Dataset) Len() int { return len(d.vals) / d.length }

// Append adds a series and returns its ID. The series must have exactly
// Length() readings.
func (d *Dataset) Append(x []float64) int {
	if len(x) != d.length {
		panic(fmt.Sprintf("series: appending series of length %d to dataset of length %d", len(x), d.length))
	}
	id := d.Len()
	d.vals = append(d.vals, x...)
	return id
}

// Get returns the series with the given ID. The returned slice aliases the
// dataset's backing storage; callers must not modify it.
func (d *Dataset) Get(id int) []float64 {
	off := id * d.length
	return d.vals[off : off+d.length : off+d.length]
}

// Values exposes the flat backing slice (length Len()*Length()). It is used
// by the storage layer to serialise datasets without copying.
func (d *Dataset) Values() []float64 { return d.vals }

// AppendFlat bulk-appends pre-flattened series values. len(vals) must be a
// multiple of the series length.
func (d *Dataset) AppendFlat(vals []float64) {
	if len(vals)%d.length != 0 {
		panic(fmt.Sprintf("series: flat append of %d values is not a multiple of series length %d", len(vals), d.length))
	}
	d.vals = append(d.vals, vals...)
}

// Slice returns a view dataset containing series [lo, hi). The view shares
// backing storage with d.
func (d *Dataset) Slice(lo, hi int) *Dataset {
	return &Dataset{length: d.length, vals: d.vals[lo*d.length : hi*d.length]}
}

// Mean returns the arithmetic mean of x.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// StdDev returns the population standard deviation of x.
func StdDev(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	mu := Mean(x)
	var s float64
	for _, v := range x {
		dv := v - mu
		s += dv * dv
	}
	return math.Sqrt(s / float64(len(x)))
}

// ZNormalize normalises x in place to zero mean and unit standard deviation.
// Constant series (zero deviation) are mapped to all zeros, the convention
// used by the iSAX family of indexes.
func ZNormalize(x []float64) {
	mu := Mean(x)
	sd := StdDev(x)
	if sd == 0 {
		for i := range x {
			x[i] = 0
		}
		return
	}
	for i := range x {
		x[i] = (x[i] - mu) / sd
	}
}

// ZNormalized returns a z-normalised copy of x, leaving x untouched.
func ZNormalized(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	ZNormalize(out)
	return out
}
