package metric

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"

	"climber/internal/pivot"
)

// The paper's worked OD example (Section IV-C): P4↛(X) = <1,3,6,8>,
// P4↛(Y) = <2,3,4,6> share {3, 6}, so OD = 4 - 2 = 2.
func TestOverlapDistPaperExample(t *testing.T) {
	x := pivot.Signature{1, 3, 6, 8}
	y := pivot.Signature{2, 3, 4, 6}
	if got := OverlapDist(x, y); got != 2 {
		t.Fatalf("OD = %d, want 2", got)
	}
}

func TestOverlapDistBounds(t *testing.T) {
	a := pivot.Signature{1, 2, 3}
	if got := OverlapDist(a, a); got != 0 {
		t.Fatalf("OD(a, a) = %d, want 0", got)
	}
	b := pivot.Signature{4, 5, 6}
	if got := OverlapDist(a, b); got != 3 {
		t.Fatalf("OD of disjoint sets = %d, want m = 3", got)
	}
}

func TestOverlapDistMismatchedLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("OD of different-length signatures did not panic")
		}
	}()
	OverlapDist(pivot.Signature{1}, pivot.Signature{1, 2})
}

// Properties of OD: symmetry, range [0, m], and identity of indiscernibles
// on sets.
func TestOverlapDistProperties(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 8))
	randSig := func(m int) pivot.Signature {
		seen := map[int]bool{}
		sig := make(pivot.Signature, 0, m)
		for len(sig) < m {
			v := rng.IntN(20)
			if !seen[v] {
				seen[v] = true
				sig = append(sig, v)
			}
		}
		sort.Ints(sig)
		return sig
	}
	for trial := 0; trial < 300; trial++ {
		m := 1 + rng.IntN(8)
		a, b := randSig(m), randSig(m)
		dab, dba := OverlapDist(a, b), OverlapDist(b, a)
		if dab != dba {
			t.Fatalf("OD asymmetric: %d vs %d", dab, dba)
		}
		if dab < 0 || dab > m {
			t.Fatalf("OD out of range: %d not in [0, %d]", dab, m)
		}
		if dab == 0 && !a.Equal(b) {
			t.Fatalf("OD = 0 for different sets %v, %v", a, b)
		}
	}
}

func TestIntersectSize(t *testing.T) {
	cases := []struct {
		a, b pivot.Signature
		want int
	}{
		{pivot.Signature{1, 2, 3}, pivot.Signature{2, 3, 4}, 2},
		{pivot.Signature{}, pivot.Signature{}, 0},
		{pivot.Signature{1}, pivot.Signature{1}, 1},
		{pivot.Signature{1, 5, 9}, pivot.Signature{2, 6, 10}, 0},
	}
	for _, c := range cases {
		if got := IntersectSize(c.a, c.b); got != c.want {
			t.Errorf("IntersectSize(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestSpearmanFootrule(t *testing.T) {
	a := pivot.Signature{1, 2, 3}
	if got := SpearmanFootrule(a, a); got != 0 {
		t.Fatalf("footrule(a, a) = %d, want 0", got)
	}
	// Swap of adjacent elements: |0-1| + |1-0| = 2.
	b := pivot.Signature{2, 1, 3}
	if got := SpearmanFootrule(a, b); got != 2 {
		t.Fatalf("footrule = %d, want 2", got)
	}
	// Disjoint signatures of length m: every ID pays |pos - m|.
	c := pivot.Signature{7, 8, 9}
	want := (3 + 2 + 1) * 2 // both directions
	if got := SpearmanFootrule(a, c); got != want {
		t.Fatalf("footrule disjoint = %d, want %d", got, want)
	}
}

func TestSpearmanFootruleSymmetric(t *testing.T) {
	f := func(pa, pb [4]uint8) bool {
		a := pivot.Signature{int(pa[0]), int(pa[1]), int(pa[2]), int(pa[3])}
		b := pivot.Signature{int(pb[0]), int(pb[1]), int(pb[2]), int(pb[3])}
		return SpearmanFootrule(a, b) == SpearmanFootrule(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKendallTau(t *testing.T) {
	a := pivot.Signature{1, 2, 3}
	if got := KendallTau(a, a); got != 0 {
		t.Fatalf("tau(a, a) = %d, want 0", got)
	}
	// One adjacent transposition = 1 discordant pair.
	b := pivot.Signature{2, 1, 3}
	if got := KendallTau(a, b); got != 1 {
		t.Fatalf("tau = %d, want 1", got)
	}
	// Full reversal of 3 elements = C(3,2) = 3 discordant pairs.
	c := pivot.Signature{3, 2, 1}
	if got := KendallTau(a, c); got != 3 {
		t.Fatalf("tau reversal = %d, want 3", got)
	}
}

func TestKendallTauSymmetric(t *testing.T) {
	f := func(pa, pb [4]uint8) bool {
		a := pivot.Signature{int(pa[0]), int(pa[1]), int(pa[2]), int(pa[3])}
		b := pivot.Signature{int(pb[0]), int(pb[1]), int(pb[2]), int(pb[3])}
		return KendallTau(a, b) == KendallTau(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
