package metric

import (
	"fmt"
	"math"

	"climber/internal/pivot"
)

// DecayKind selects the decay function used to derive pivot weights from a
// rank-sensitive signature (Definition 9). The first (closest) pivot always
// receives the largest weight; weights strictly decrease with position.
type DecayKind int

const (
	// ExponentialDecay assigns W(i) = lambda^(i-1) for position i (1-based).
	// With lambda = 1/2 the sequence is [1, 1/2, 1/4, ...] as in the
	// paper's Example 1.
	ExponentialDecay DecayKind = iota
	// LinearDecay assigns W(i) = lambda * (m - i + 1). With lambda = 1/m
	// the sequence is [1, (m-1)/m, (m-2)/m, ...].
	LinearDecay
)

// String names the decay kind for logs and CLI flags.
func (k DecayKind) String() string {
	switch k {
	case ExponentialDecay:
		return "exponential"
	case LinearDecay:
		return "linear"
	default:
		return fmt.Sprintf("DecayKind(%d)", int(k))
	}
}

// ParseDecayKind parses "exponential" or "linear".
func ParseDecayKind(s string) (DecayKind, error) {
	switch s {
	case "exponential", "exp":
		return ExponentialDecay, nil
	case "linear", "lin":
		return LinearDecay, nil
	default:
		return 0, fmt.Errorf("metric: unknown decay kind %q (want exponential or linear)", s)
	}
}

// Weigher precomputes the pivot weight sequence W(1) > W(2) > ... > W(m) of
// Definition 9 and the constant Total Weight of Definition 10, and evaluates
// the Weight Distance of Definition 11. A Weigher is immutable and safe for
// concurrent use.
type Weigher struct {
	weights []float64
	total   float64
}

// NewWeigher builds a Weigher for signatures of prefix length m using the
// given decay function and rate lambda in (0, 1). For LinearDecay the paper
// fixes lambda = 1/m; pass Lambda <= 0 to use that default for either kind
// (exponential then defaults to 1/2).
func NewWeigher(m int, kind DecayKind, lambda float64) (*Weigher, error) {
	if m <= 0 {
		return nil, fmt.Errorf("metric: prefix length must be positive, got %d", m)
	}
	if lambda <= 0 {
		switch kind {
		case ExponentialDecay:
			lambda = 0.5
		case LinearDecay:
			lambda = 1.0 / float64(m)
		}
	}
	// lambda = 1 is permitted only when it still yields strictly decreasing
	// weights (e.g. linear decay with m = 1); the monotonicity check below
	// rejects every other degenerate case.
	if lambda <= 0 || lambda > 1 {
		return nil, fmt.Errorf("metric: decay rate must lie in (0, 1], got %g", lambda)
	}
	w := &Weigher{weights: make([]float64, m)}
	for i := 1; i <= m; i++ {
		var v float64
		switch kind {
		case ExponentialDecay:
			v = math.Pow(lambda, float64(i-1))
		case LinearDecay:
			v = lambda * float64(m-i+1)
		default:
			return nil, fmt.Errorf("metric: unknown decay kind %d", int(kind))
		}
		w.weights[i-1] = v
		w.total += v
	}
	// Definition 9 requires strictly decreasing weights; verify, since a
	// bad lambda would silently break tie-breaking downstream.
	for i := 1; i < m; i++ {
		if !(w.weights[i] < w.weights[i-1]) {
			return nil, fmt.Errorf("metric: decay produced non-decreasing weights at position %d", i+1)
		}
	}
	return w, nil
}

// MustWeigher is NewWeigher that panics on invalid arguments.
func MustWeigher(m int, kind DecayKind, lambda float64) *Weigher {
	w, err := NewWeigher(m, kind, lambda)
	if err != nil {
		panic(err)
	}
	return w
}

// Weight returns W(position) for a 1-based position in the rank-sensitive
// signature.
func (w *Weigher) Weight(position int) float64 { return w.weights[position-1] }

// Total returns the Total Weight TW of Definition 10 — a constant for any
// signature of the configured length, since the number of pivots and the
// decay function are fixed system-wide.
func (w *Weigher) Total() float64 { return w.total }

// PrefixLen returns the prefix length m the Weigher was built for.
func (w *Weigher) PrefixLen() int { return len(w.weights) }

// WeightDist computes the Weight Distance of Definition 11 between a
// rank-sensitive signature P4→(X) and a rank-insensitive centroid signature
// P4↛(o):
//
//	WD(X, o) = TW(X) - Σ_i W(i) · 1[P4→(X)[i] ∈ P4↛(o)]
//
// The more of X's pivots appear in the centroid — and the closer to the
// front of X's ranking they sit — the smaller the distance. The centroid
// must be sorted ascending; membership is tested by binary search.
func (w *Weigher) WeightDist(rankSensitive, centroid pivot.Signature) float64 {
	if len(rankSensitive) != len(w.weights) {
		panic(fmt.Sprintf("metric: weight distance of signature length %d with weigher length %d",
			len(rankSensitive), len(w.weights)))
	}
	matched := 0.0
	for i, id := range rankSensitive {
		if containsSorted(centroid, id) {
			matched += w.weights[i]
		}
	}
	return w.total - matched
}

func containsSorted(sig pivot.Signature, id int) bool {
	lo, hi := 0, len(sig)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case sig[mid] == id:
			return true
		case sig[mid] < id:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return false
}
