package metric

import (
	"math"
	"testing"

	"climber/internal/pivot"
)

// The paper's Example 1 weight sequence: exponential decay, lambda = 1/2,
// m = 3 gives weights [1, 1/2, 1/4] and Total Weight 1.75.
func TestWeigherPaperExample1Sequence(t *testing.T) {
	w := MustWeigher(3, ExponentialDecay, 0.5)
	want := []float64{1, 0.5, 0.25}
	for i, v := range want {
		if got := w.Weight(i + 1); math.Abs(got-v) > 1e-12 {
			t.Fatalf("W(%d) = %g, want %g", i+1, got, v)
		}
	}
	if got := w.Total(); math.Abs(got-1.75) > 1e-12 {
		t.Fatalf("TW = %g, want 1.75", got)
	}
}

// The paper's Example 1 WD computations:
//
//	centroids: o1 = <1,2,3>, o2 = <2,4,5>
//	Y: P4→ = <4,2,1>  -> weights W(4)=1, W(2)=0.5, W(1)=0.25, TW=1.75
//	  WD(Y, o1) = 1.75 - (W(1)+W(2)) = 1.75 - 0.75 = 1
//	  WD(Y, o2) = 1.75 - (W(4)+W(2)) = 1.75 - 1.5  = 0.25
//	Z: P4→ = <6,2,7>  -> W(6)=1, W(2)=0.5, W(7)=0.25
//	  WD(Z, o1) = 1.75 - W(2) = 1.25
//	  WD(Z, o2) = 1.75 - W(2) = 1.25
func TestWeightDistPaperExample1(t *testing.T) {
	w := MustWeigher(3, ExponentialDecay, 0.5)
	o1 := pivot.Signature{1, 2, 3}
	o2 := pivot.Signature{2, 4, 5}

	y := pivot.Signature{4, 2, 1}
	if got := w.WeightDist(y, o1); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("WD(Y, o1) = %g, want 1", got)
	}
	if got := w.WeightDist(y, o2); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("WD(Y, o2) = %g, want 0.25", got)
	}

	z := pivot.Signature{6, 2, 7}
	if got := w.WeightDist(z, o1); math.Abs(got-1.25) > 1e-12 {
		t.Fatalf("WD(Z, o1) = %g, want 1.25", got)
	}
	if got := w.WeightDist(z, o2); math.Abs(got-1.25) > 1e-12 {
		t.Fatalf("WD(Z, o2) = %g, want 1.25", got)
	}
}

func TestLinearDecaySequence(t *testing.T) {
	// lambda defaults to 1/m: [1, (m-1)/m, ..., 1/m].
	m := 4
	w := MustWeigher(m, LinearDecay, 0)
	want := []float64{1, 0.75, 0.5, 0.25}
	for i, v := range want {
		if got := w.Weight(i + 1); math.Abs(got-v) > 1e-12 {
			t.Fatalf("linear W(%d) = %g, want %g", i+1, got, v)
		}
	}
}

// Definition 9 requires strictly decreasing weights for every valid decay.
func TestWeightsStrictlyDecreasing(t *testing.T) {
	for _, kind := range []DecayKind{ExponentialDecay, LinearDecay} {
		for _, m := range []int{1, 2, 3, 10, 40} {
			w, err := NewWeigher(m, kind, 0)
			if err != nil {
				t.Fatalf("NewWeigher(%d, %v): %v", m, kind, err)
			}
			for i := 2; i <= m; i++ {
				if !(w.Weight(i) < w.Weight(i-1)) {
					t.Fatalf("%v m=%d: W(%d)=%g not < W(%d)=%g",
						kind, m, i, w.Weight(i), i-1, w.Weight(i-1))
				}
			}
		}
	}
}

func TestWeigherValidation(t *testing.T) {
	if _, err := NewWeigher(0, ExponentialDecay, 0.5); err == nil {
		t.Error("m=0 should fail")
	}
	if _, err := NewWeigher(3, ExponentialDecay, 1.5); err == nil {
		t.Error("lambda > 1 should fail")
	}
	if _, err := NewWeigher(3, DecayKind(99), 0.5); err == nil {
		t.Error("unknown decay kind should fail")
	}
}

// WD bounds: 0 <= WD <= TW, with WD = 0 iff every signature pivot appears in
// the centroid, and WD = TW iff none do.
func TestWeightDistBounds(t *testing.T) {
	w := MustWeigher(3, ExponentialDecay, 0.5)
	sig := pivot.Signature{5, 3, 8}
	if got := w.WeightDist(sig, pivot.Signature{3, 5, 8}); got != 0 {
		t.Fatalf("WD with full containment = %g, want 0", got)
	}
	if got := w.WeightDist(sig, pivot.Signature{1, 2, 4}); math.Abs(got-w.Total()) > 1e-12 {
		t.Fatalf("WD with no containment = %g, want TW = %g", got, w.Total())
	}
}

// The WD tie-break prefers centroids containing the query's closest pivots:
// a centroid holding the 1st-ranked pivot must beat one holding only the
// last-ranked pivot.
func TestWeightDistRanksFrontPivotsHigher(t *testing.T) {
	w := MustWeigher(3, ExponentialDecay, 0.5)
	sig := pivot.Signature{7, 8, 9}
	holdsFirst := pivot.Signature{1, 2, 7}
	holdsLast := pivot.Signature{1, 2, 9}
	if !(w.WeightDist(sig, holdsFirst) < w.WeightDist(sig, holdsLast)) {
		t.Fatal("centroid containing the closest pivot should have smaller WD")
	}
}

func TestWeightDistWrongLengthPanics(t *testing.T) {
	w := MustWeigher(3, ExponentialDecay, 0.5)
	defer func() {
		if recover() == nil {
			t.Fatal("WD with wrong signature length did not panic")
		}
	}()
	w.WeightDist(pivot.Signature{1, 2}, pivot.Signature{1, 2, 3})
}

func TestParseDecayKind(t *testing.T) {
	for _, c := range []struct {
		in   string
		want DecayKind
	}{{"exponential", ExponentialDecay}, {"exp", ExponentialDecay}, {"linear", LinearDecay}, {"lin", LinearDecay}} {
		got, err := ParseDecayKind(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseDecayKind(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := ParseDecayKind("bogus"); err == nil {
		t.Error("ParseDecayKind accepted garbage")
	}
}

func TestDecayKindString(t *testing.T) {
	if ExponentialDecay.String() != "exponential" || LinearDecay.String() != "linear" {
		t.Fatal("DecayKind.String mismatch")
	}
}
