// Package metric implements the similarity metrics CLIMBER tailors to its
// P4 dual representation (paper Section IV-C, Definitions 7-11), plus the
// classic rank-correlation distances (Spearman footrule, Kendall tau) that
// prior pivot-permutation work uses on rank-sensitive signatures.
//
// The paper's key observation is that existing permutation distances assume
// a single ordered representation per object. CLIMBER compares objects at
// two granularities — rank-insensitive for group formation and
// rank-sensitive for tie-breaking — which requires the Overlap Distance and
// Weight Distance defined here.
package metric

import (
	"fmt"

	"climber/internal/pivot"
)

// OverlapDist computes the Overlap Distance of Definition 7 between two
// rank-insensitive signatures of equal prefix length m:
//
//	OD(X, Y) = m - |P4↛(X) ∩ P4↛(Y)|
//
// The result lies in [0, m]: 0 when the pivot sets coincide, m when they are
// disjoint. Both inputs must be sorted ascending (the rank-insensitive
// form); the intersection is then computed by a linear merge.
func OverlapDist(a, b pivot.Signature) int {
	m := len(a)
	if len(b) != m {
		panic(fmt.Sprintf("metric: overlap distance between signatures of lengths %d and %d", m, len(b)))
	}
	return m - IntersectSize(a, b)
}

// IntersectSize returns |a ∩ b| for two ascending-sorted signatures.
func IntersectSize(a, b pivot.Signature) int {
	var n, i, j int
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			n++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return n
}

// SpearmanFootrule computes the Spearman footrule distance between two
// rank-sensitive signatures viewed as partial rankings: the sum over all
// pivot IDs present in either signature of |pos_a - pos_b|, where a missing
// ID is assigned the penalty position m (the "location parameter" variant
// of Fagin et al. used by the pivot-permutation literature [37]).
func SpearmanFootrule(a, b pivot.Signature) int {
	m := len(a)
	posA := positions(a)
	posB := positions(b)
	var d int
	for id, pa := range posA {
		pb, ok := posB[id]
		if !ok {
			pb = m
		}
		d += abs(pa - pb)
	}
	for id, pb := range posB {
		if _, ok := posA[id]; !ok {
			d += abs(m - pb)
		}
	}
	return d
}

// KendallTau computes the Kendall tau distance between two rank-sensitive
// signatures viewed as partial rankings: the number of pivot pairs (i, j)
// ordered differently by the two signatures. Pairs involving an ID absent
// from one signature count as discordant when the present signature orders
// them, following the optimistic variant of [37].
func KendallTau(a, b pivot.Signature) int {
	posA := positions(a)
	posB := positions(b)
	ids := make([]int, 0, len(posA)+len(posB))
	seen := make(map[int]struct{}, len(posA)+len(posB))
	for _, id := range a {
		if _, ok := seen[id]; !ok {
			seen[id] = struct{}{}
			ids = append(ids, id)
		}
	}
	for _, id := range b {
		if _, ok := seen[id]; !ok {
			seen[id] = struct{}{}
			ids = append(ids, id)
		}
	}
	m := len(a)
	rank := func(pos map[int]int, id int) int {
		if p, ok := pos[id]; ok {
			return p
		}
		return m // absent IDs rank past the end
	}
	var d int
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			ai, aj := rank(posA, ids[i]), rank(posA, ids[j])
			bi, bj := rank(posB, ids[i]), rank(posB, ids[j])
			if ai == aj || bi == bj {
				continue // both absent from one side: order unknown, not discordant
			}
			if (ai < aj) != (bi < bj) {
				d++
			}
		}
	}
	return d
}

func positions(sig pivot.Signature) map[int]int {
	pos := make(map[int]int, len(sig))
	for i, id := range sig {
		pos[id] = i
	}
	return pos
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
