package climber

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// ingestOpts parks the background compactor behind huge thresholds so tests
// control compaction timing explicitly.
func ingestOpts(extra ...Option) []Option {
	return append(append([]Option{}, smallOpts()...),
		append([]Option{WithCompactionRecords(1 << 20), WithCompactionAge(time.Hour)}, extra...)...)
}

// An acked Append must survive a process kill: nothing was flushed or
// closed, yet reopening the directory replays the WAL and every record is
// searchable.
func TestAppendSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	data := smallData(1200)
	db, err := Build(dir, data, ingestOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	extra := smallData(1230)[1200:] // 30 fresh series
	ids, err := db.Append(extra)
	if err != nil {
		t.Fatal(err)
	}
	if db.IngestStats().Compactions != 0 {
		t.Fatal("test premise broken: a compaction ran before the simulated kill")
	}
	// Simulated kill -9: nothing flushed, nothing compacted, the WAL's
	// single-writer lock released by the "death".
	db.abandonForTest()

	re, err := Open(dir, ingestOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.IngestStats().ReplayedSeries; got != 30 {
		t.Fatalf("replayed %d series, want 30", got)
	}
	if got := re.Info().NumRecords; got != 1230 {
		t.Fatalf("NumRecords = %d after recovery, want 1230", got)
	}
	found := 0
	for i, q := range extra[:10] {
		res, err := re.Search(q, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) > 0 && res[0].ID == ids[i] && res[0].Dist < 1e-4 {
			found++
		}
	}
	if found < 9 {
		t.Fatalf("found %d/10 acked records after recovery, want >= 9", found)
	}
	// New IDs continue past the recovered tail.
	ids2, err := re.Append(extra[:1])
	if err != nil {
		t.Fatal(err)
	}
	if ids2[0] != 1230 {
		t.Fatalf("post-recovery append ID = %d, want 1230", ids2[0])
	}
}

// Flush moves every acked record from the delta into partition files; the
// WAL empties and searches keep finding the records.
func TestFlushDrainsDelta(t *testing.T) {
	dir := t.TempDir()
	db, err := Build(dir, smallData(1000), ingestOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	extra := smallData(1020)[1000:]
	ids, err := db.Append(extra)
	if err != nil {
		t.Fatal(err)
	}
	st := db.IngestStats()
	if st.DeltaRecords != 20 || st.WALBytes <= 12 {
		t.Fatalf("pre-flush ingest stats: %+v", st)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	st = db.IngestStats()
	if st.DeltaRecords != 0 || st.Compactions != 1 || st.CompactedSeries != 20 {
		t.Fatalf("post-flush ingest stats: %+v", st)
	}
	res, err := db.Search(extra[7], 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 || res[0].ID != ids[7] || res[0].Dist > 1e-4 {
		t.Fatalf("record invisible after flush: %+v", res)
	}
	if db.Info().NumRecords != 1020 {
		t.Fatalf("NumRecords = %d after flush, want 1020", db.Info().NumRecords)
	}
}

// Appends and searches from many goroutines must be safe (run under -race)
// and every acked record immediately findable — including while background
// compactions overlap the search traffic.
func TestConcurrentAppendAndSearch(t *testing.T) {
	dir := t.TempDir()
	data := smallData(1000)
	// Low thresholds so real compactions race the workload.
	db, err := Build(dir, data, append(append([]Option{}, smallOpts()...),
		WithCompactionRecords(24), WithCompactionAge(50*time.Millisecond))...)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const (
		writers      = 4
		perWriter    = 8
		batchSize    = 4
		readers      = 4
		searchesEach = 30
	)
	fresh := smallData(1000 + writers*perWriter*batchSize)[1000:]
	var wg sync.WaitGroup
	errCh := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := w * perWriter * batchSize
			for b := 0; b < perWriter; b++ {
				recs := fresh[base+b*batchSize : base+(b+1)*batchSize]
				if _, err := db.Append(recs); err != nil {
					errCh <- err
					return
				}
				// Each acked batch is immediately searchable.
				res, err := db.Search(recs[0], 3)
				if err != nil {
					errCh <- err
					return
				}
				if len(res) == 0 {
					errCh <- errors.New("search returned no results mid-ingest")
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < searchesEach; i++ {
				if _, err := db.Search(data[(r*131+i*7)%len(data)], 10); err != nil {
					errCh <- err
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Every ID was assigned exactly once: the final record count is exact.
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	want := 1000 + writers*perWriter*batchSize
	if got := db.Info().NumRecords; got != want {
		t.Fatalf("NumRecords = %d after concurrent appends, want %d", got, want)
	}
}

// The delta merge reports its effort: DeltaScanned is populated while
// records sit in the delta and zero after compaction.
func TestDeltaScannedStat(t *testing.T) {
	db, err := Build(t.TempDir(), smallData(1000), ingestOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	extra := smallData(1010)[1000:]
	if _, err := db.Append(extra); err != nil {
		t.Fatal(err)
	}
	_, st, err := db.SearchWithStats(extra[0], 3)
	if err != nil {
		t.Fatal(err)
	}
	if st.DeltaScanned == 0 {
		t.Fatal("DeltaScanned = 0 with a populated delta")
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	_, st, err = db.SearchWithStats(extra[0], 3)
	if err != nil {
		t.Fatal(err)
	}
	if st.DeltaScanned != 0 {
		t.Fatalf("DeltaScanned = %d after flush, want 0", st.DeltaScanned)
	}
}

// Rebuilding a database in place (the documented remedy for capacity
// drift) must not replay the previous database's WAL into the fresh index.
func TestRebuildInPlaceDiscardsStaleWAL(t *testing.T) {
	dir := t.TempDir()
	db, err := Build(dir, smallData(1000), ingestOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Append(smallData(1010)[1000:]); err != nil {
		t.Fatal(err)
	}
	db.abandonForTest() // uncompacted entries left in wal.clmw

	re, err := Build(dir, smallData(800), ingestOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.IngestStats().ReplayedSeries; got != 0 {
		t.Fatalf("fresh build replayed %d stale WAL series, want 0", got)
	}
	if got := re.Info().NumRecords; got != 800 {
		t.Fatalf("NumRecords = %d after rebuild, want 800", got)
	}
}
