package climber

import (
	"context"
	"errors"
	"testing"
)

func TestCloseIdempotentAndSentinels(t *testing.T) {
	data := smallData(600)
	db, err := Build(t.TempDir(), data, smallOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Search(data[0], 5); err != nil {
		t.Fatalf("search before close: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("second close must be a no-op, got %v", err)
	}
	if _, err := db.Search(data[0], 5); !errors.Is(err, ErrClosed) {
		t.Fatalf("search after close returned %v, want ErrClosed", err)
	}
	if _, _, err := db.SearchWithStats(data[0], 5); !errors.Is(err, ErrClosed) {
		t.Fatalf("search-with-stats after close returned %v, want ErrClosed", err)
	}
	if _, err := db.SearchPrefix(data[0][:32], 5); !errors.Is(err, ErrClosed) {
		t.Fatalf("prefix search after close returned %v, want ErrClosed", err)
	}
	if _, err := db.SearchBatch([][]float64{data[0]}, 5); !errors.Is(err, ErrClosed) {
		t.Fatalf("batch after close returned %v, want ErrClosed", err)
	}
	if _, err := db.Append(data[:1]); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close returned %v, want ErrClosed", err)
	}
}

func TestClosePurgesPartitionCache(t *testing.T) {
	dir := t.TempDir()
	data := smallData(600)
	buildAndClose(t, dir, data, smallOpts()...)
	db, err := Open(dir, WithPartitionCacheBytes(256<<20))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Search(data[0], 10); err != nil {
		t.Fatal(err)
	}
	pc := db.cl.PartitionCache()
	if pc == nil || pc.Len() == 0 {
		t.Fatal("expected resident cache entries before close")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if pc.Len() != 0 || pc.Bytes() != 0 {
		t.Fatalf("close left %d entries / %d bytes resident", pc.Len(), pc.Bytes())
	}
	if db.cl.PartitionCache() != nil {
		t.Fatal("close must uninstall the cache")
	}
}

func TestReopenAfterClose(t *testing.T) {
	dir := t.TempDir()
	data := smallData(600)
	db, err := Build(dir, data, smallOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.Search(data[7], 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	got, err := reopened.Search(data[7], 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d results after reopen, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("result %d differs after reopen: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestSearchPrefixWithStatsReportsEffort(t *testing.T) {
	data := smallData(800)
	db, err := Build(t.TempDir(), data, smallOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	res, stats, err := db.SearchPrefixWithStats(data[3][:32], 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("prefix search returned no results")
	}
	if stats.PartitionsScanned == 0 || stats.RecordsScanned == 0 || stats.BytesLoaded == 0 {
		t.Fatalf("prefix stats empty: %+v", stats)
	}
	plain, err := db.SearchPrefix(data[3][:32], 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res {
		if res[i] != plain[i] {
			t.Fatalf("result %d differs between SearchPrefix and SearchPrefixWithStats", i)
		}
	}
}

func TestSearchContextPublicAPI(t *testing.T) {
	data := smallData(600)
	db, err := Build(t.TempDir(), data, smallOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.SearchContext(ctx, data[0], 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled SearchContext returned %v", err)
	}
	if _, err := db.SearchBatchContext(ctx, [][]float64{data[0]}, 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled SearchBatchContext returned %v", err)
	}
	res, err := db.SearchContext(context.Background(), data[0], 5)
	if err != nil || len(res) == 0 {
		t.Fatalf("SearchContext: %v (%d results)", err, len(res))
	}
}
