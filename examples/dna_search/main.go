// DNA subsequence search: find genome fragments similar to a probe
// sequence — the paper evaluates CLIMBER on series converted from the UCSC
// human-genome assembly exactly this way (DNA strings cut into
// subsequences, numerically encoded; Section VII-A).
//
// The example builds a CLIMBER database over converted DNA fragments and
// contrasts the four query variants (kNN, Adaptive-2X, Adaptive-4X,
// OD-Smallest) on the same probes: recall climbs with the amount of data
// each variant is willing to touch — the trade-off at the heart of the
// paper.
//
//	go run ./examples/dna_search
package main

import (
	"fmt"
	"log"
	"os"

	"climber"
	"climber/internal/dataset"
	"climber/internal/dss"
	"climber/internal/series"
)

func main() {
	log.SetFlags(0)

	const fragments = 10000
	genome := dataset.DNAWalk(fragments, 77)
	fmt.Printf("genome archive: %d fragments, %d points each (order-2 Markov ACGT -> numeric walk)\n",
		genome.Len(), genome.Length())

	dir, err := os.MkdirTemp("", "climber-dna-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	db, err := climber.BuildDataset(dir, genome,
		climber.WithPivots(200),
		climber.WithCapacity(1000),
		climber.WithSeed(11),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	info := db.Info()
	fmt.Printf("index: %d groups, %d partitions, %.1f KB skeleton\n\n",
		info.NumGroups, info.NumPartitions, float64(info.SkeletonBytes)/1024)

	const k = 50
	_, probes := dataset.Queries(genome, 10, 5)

	variants := []struct {
		name string
		v    climber.Variant
	}{
		{"CLIMBER-kNN", climber.KNN},
		{"Adaptive-2X", climber.Adaptive2X},
		{"Adaptive-4X", climber.Adaptive4X},
		{"OD-Smallest", climber.ODSmallest},
	}
	fmt.Printf("%-14s %-8s %-12s %-10s\n", "variant", "recall", "records", "partitions")
	for _, vc := range variants {
		sumRecall, sumRecords, sumParts := 0.0, 0, 0
		for _, q := range probes {
			exact := dss.SearchDataset(genome, q, k)
			res, stats, err := db.SearchWithStats(q, k, climber.WithVariant(vc.v))
			if err != nil {
				log.Fatal(err)
			}
			approx := make([]series.Result, len(res))
			for i, r := range res {
				approx[i] = series.Result{ID: r.ID, Dist: r.Dist}
			}
			sumRecall += series.Recall(approx, exact)
			sumRecords += stats.RecordsScanned
			sumParts += stats.PartitionsScanned
		}
		n := float64(len(probes))
		fmt.Printf("%-14s %-8.3f %-12.0f %-10.1f\n",
			vc.name, sumRecall/n, float64(sumRecords)/n, float64(sumParts)/n)
	}
	fmt.Println("\nrecall rises with data touched: the paper's accuracy/effort trade-off (Figure 11).")

	// Short-probe search: a probe covering only the first third of a
	// fragment (64 of 192 points) — the query-shorter-than-index capability
	// the paper credits PAA-family representations with (Section II).
	shortProbe := make([]float64, 64)
	copy(shortProbe, genome.Get(4242)[:64])
	short, err := db.SearchPrefix(shortProbe, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nshort-probe search (64 of %d points): top hits ", genome.Length())
	for i := 0; i < 3 && i < len(short); i++ {
		fmt.Printf("#%d(%.2f) ", short[i].ID, short[i].Dist)
	}
	fmt.Println()
}
