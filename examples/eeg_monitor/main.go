// EEG monitor: retrieve historical EEG episodes similar to a live recording
// window — the medical-sensing scenario that motivates the paper's
// introduction (an ECG device alone generates ~1 GB of series per hour;
// clinicians need sub-second retrieval of "have we seen this pattern
// before?").
//
// The example builds a CLIMBER database over an archive of EEG windows
// (5% of which carry seizure-like bursts), then issues queries from both a
// normal window and a seizure window, showing that retrieval stays within
// the same class of episode, and compares CLIMBER's answer against the
// exact scan.
//
//	go run ./examples/eeg_monitor
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"climber"
	"climber/internal/dataset"
	"climber/internal/dss"
	"climber/internal/series"
)

// burstiness scores how seizure-like a window is: the ratio of peak to
// median absolute amplitude (bursts push the peak far above the median).
func burstiness(x []float64) float64 {
	peak := 0.0
	abs := make([]float64, len(x))
	for i, v := range x {
		a := math.Abs(v)
		abs[i] = a
		if a > peak {
			peak = a
		}
	}
	// Median via partial selection is overkill here; a simple mean works
	// as the denominator for a score used only to rank examples.
	mean := 0.0
	for _, a := range abs {
		mean += a
	}
	mean /= float64(len(abs))
	return peak / mean
}

func main() {
	log.SetFlags(0)

	const archiveSize = 8000
	archive := dataset.EEG(archiveSize, 2024)

	// Pick the most burst-like window as the "seizure" query and the least
	// burst-like as the "normal" query.
	seizureID, normalID := 0, 0
	maxB, minB := 0.0, math.Inf(1)
	for i := 0; i < archive.Len(); i++ {
		b := burstiness(archive.Get(i))
		if b > maxB {
			maxB, seizureID = b, i
		}
		if b < minB {
			minB, normalID = b, i
		}
	}
	fmt.Printf("archive: %d EEG windows of %d samples\n", archive.Len(), archive.Length())
	fmt.Printf("query windows: seizure-like #%d (burstiness %.2f), normal #%d (burstiness %.2f)\n",
		seizureID, maxB, normalID, minB)

	dir, err := os.MkdirTemp("", "climber-eeg-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	db, err := climber.BuildDataset(dir, archive,
		climber.WithPivots(150),
		climber.WithCapacity(800),
		climber.WithSeed(3),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	const k = 20
	for _, qc := range []struct {
		label string
		id    int
	}{{"seizure-like", seizureID}, {"normal", normalID}} {
		q := archive.Get(qc.id)
		res, stats, err := db.SearchWithStats(q, k)
		if err != nil {
			log.Fatal(err)
		}
		// How many retrieved episodes share the query's burstiness class?
		classThreshold := (maxB + minB) / 2
		qIsBursty := burstiness(q) > classThreshold
		same := 0
		for _, r := range res {
			if (burstiness(archive.Get(r.ID)) > classThreshold) == qIsBursty {
				same++
			}
		}
		exact := dss.SearchDataset(archive, q, k)
		approx := make([]series.Result, len(res))
		for i, r := range res {
			approx[i] = series.Result{ID: r.ID, Dist: r.Dist}
		}
		fmt.Printf("\n%s query (window #%d):\n", qc.label, qc.id)
		fmt.Printf("  scanned %d records across %d partitions\n", stats.RecordsScanned, stats.PartitionsScanned)
		fmt.Printf("  %d/%d retrieved windows share the query's class\n", same, len(res))
		fmt.Printf("  recall vs exact scan: %.2f\n", series.Recall(approx, exact))
		fmt.Printf("  closest episodes: ")
		for i := 0; i < 5 && i < len(res); i++ {
			fmt.Printf("#%d(%.2f) ", res[i].ID, res[i].Dist)
		}
		fmt.Println()
	}
}
