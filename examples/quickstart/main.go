// Quickstart: build a CLIMBER database over a synthetic data-series
// collection and run an approximate kNN query through the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"os"

	"climber"
)

func main() {
	log.SetFlags(0)

	// A toy collection: 5,000 random-walk series of 128 readings each —
	// think one day of per-minute sensor readings per series.
	const (
		numSeries = 5000
		seriesLen = 128
	)
	rng := rand.New(rand.NewPCG(7, 7))
	data := make([][]float64, numSeries)
	for i := range data {
		x := make([]float64, seriesLen)
		v := 0.0
		for j := range x {
			v += rng.NormFloat64()
			x[j] = v
		}
		data[i] = x
	}

	dir, err := os.MkdirTemp("", "climber-quickstart-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Build with defaults scaled to the toy collection: 100 pivots and
	// ~10 partitions. Larger deployments keep the paper defaults
	// (200 pivots, prefix 10).
	db, err := climber.Build(dir, data,
		climber.WithPivots(100),
		climber.WithCapacity(500),
		climber.WithSeed(1),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	info := db.Info()
	fmt.Printf("built: %d series -> %d groups, %d partitions, %d-byte skeleton\n",
		info.NumRecords, info.NumGroups, info.NumPartitions, info.SkeletonBytes)

	// Query with series #42 itself: its nearest neighbour is... itself,
	// followed by genuinely similar walks.
	res, stats, err := db.SearchWithStats(data[42], 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query touched %d of %d partitions (%d records compared)\n",
		stats.PartitionsScanned, info.NumPartitions, stats.RecordsScanned)
	for i, r := range res {
		fmt.Printf("  #%-2d series %-5d distance %.4f\n", i+1, r.ID, r.Dist)
	}

	// The same query under the cheaper non-adaptive algorithm.
	res, err = db.Search(data[42], 10, climber.WithVariant(climber.KNN))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CLIMBER-kNN top hit: series %d at distance %.4f\n", res[0].ID, res[0].Dist)
}
