// Market regimes: maintain a growing archive of normalised price windows
// and, at the end of each trading day, batch-query the current windows of a
// whole portfolio against history — the finance workload the paper's
// introduction motivates (data series "in sciences, IoT, finance, and web
// applications").
//
// The example exercises two production features of this implementation that
// go beyond one-shot benchmarks: Append (ingesting each new day into the
// existing index without a rebuild) and SearchBatch (the concurrent
// batch-query path).
//
//	go run ./examples/market_regimes
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"os"

	"climber"
	"climber/internal/series"
)

const windowLen = 128 // readings per price window

// priceWindow synthesises one z-normalised price window with regime
// characteristics: trending windows drift steadily, mean-reverting windows
// oscillate, and volatile windows carry heavy noise.
func priceWindow(rng *rand.Rand, regime int) []float64 {
	x := make([]float64, windowLen)
	price := 100.0
	trend := 0.0
	switch regime {
	case 0: // trending
		trend = 0.3 + rng.Float64()*0.4
		if rng.IntN(2) == 0 {
			trend = -trend
		}
	case 1: // mean-reverting
	case 2: // volatile
	}
	for i := range x {
		switch regime {
		case 0:
			price += trend + rng.NormFloat64()*0.3
		case 1:
			price += (100-price)*0.2 + rng.NormFloat64()*0.5
		case 2:
			price += rng.NormFloat64() * 2.5
		}
		x[i] = price
	}
	series.ZNormalize(x)
	return x
}

func main() {
	log.SetFlags(0)
	rng := rand.New(rand.NewPCG(2026, 6))
	regimeName := []string{"trending", "mean-reverting", "volatile"}

	// Historical archive: 6,000 windows with known regimes.
	const histSize = 6000
	history := make([][]float64, histSize)
	regimes := make([]int, histSize)
	for i := range history {
		regimes[i] = rng.IntN(3)
		history[i] = priceWindow(rng, regimes[i])
	}

	dir, err := os.MkdirTemp("", "climber-market-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	db, err := climber.Build(dir, history,
		climber.WithPivots(120),
		climber.WithCapacity(400),
		climber.WithSeed(9),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	fmt.Printf("archive: %d windows -> %d partitions\n", histSize, db.Info().NumPartitions)

	// Five trading days: each day appends 200 fresh windows, then
	// batch-queries a 10-instrument portfolio against everything seen.
	const portfolio = 10
	for day := 1; day <= 5; day++ {
		fresh := make([][]float64, 200)
		freshRegimes := make([]int, 200)
		for i := range fresh {
			freshRegimes[i] = rng.IntN(3)
			fresh[i] = priceWindow(rng, freshRegimes[i])
		}
		ids, err := db.Append(fresh)
		if err != nil {
			log.Fatal(err)
		}
		regimes = append(regimes, freshRegimes...)
		_ = ids

		queries := make([][]float64, portfolio)
		queryRegimes := make([]int, portfolio)
		for i := range queries {
			queryRegimes[i] = rng.IntN(3)
			queries[i] = priceWindow(rng, queryRegimes[i])
		}
		batch, err := db.SearchBatch(queries, 20)
		if err != nil {
			log.Fatal(err)
		}
		// For each instrument: does retrieved history share the regime?
		agree, total := 0, 0
		for i, res := range batch {
			for _, r := range res {
				if regimes[r.ID] == queryRegimes[i] {
					agree++
				}
				total++
			}
		}
		fmt.Printf("day %d: archive=%d windows, portfolio regime agreement %d/%d (%.0f%%)\n",
			day, db.Info().NumRecords, agree, total, 100*float64(agree)/float64(total))
	}

	// Show one retrieval in detail.
	q := priceWindow(rng, 0)
	res, stats, err := db.SearchWithStats(q, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsample %s query: scanned %d records in %d partitions\n",
		regimeName[0], stats.RecordsScanned, stats.PartitionsScanned)
	for i, r := range res {
		fmt.Printf("  #%d window %-6d (%s) distance %.3f\n",
			i+1, r.ID, regimeName[regimes[r.ID]], r.Dist)
	}
}
