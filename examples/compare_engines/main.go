// Compare engines: a miniature rendition of the paper's Table I — CLIMBER
// (disk-based approximate) vs an Odyssey-style in-memory exact engine vs
// HNSW (graph-based approximate) on the same workload, reporting build
// time, query time, and recall.
//
// The trade-off triangle of Section VII-D appears directly in the output:
// the exact engine is fastest per query but memory-bound; HNSW pays a heavy
// construction bill for its recall; CLIMBER keeps construction and query
// costs moderate while scaling past memory (its partitions live on disk).
//
//	go run ./examples/compare_engines
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"climber"
	"climber/internal/dataset"
	"climber/internal/dss"
	"climber/internal/hnsw"
	"climber/internal/odyssey"
	"climber/internal/series"
)

func main() {
	log.SetFlags(0)

	const n, k, numQueries = 8000, 50, 10
	ds := dataset.RandomWalk(dataset.RandomWalkLength, n, 99)
	_, queries := dataset.Queries(ds, numQueries, 55)
	exact := make([][]series.Result, numQueries)
	for i, q := range queries {
		exact[i] = dss.SearchDataset(ds, q, k)
	}
	fmt.Printf("workload: %d random-walk series, %d queries, K=%d\n\n", n, numQueries, k)
	fmt.Printf("%-10s %-12s %-12s %-8s\n", "engine", "build", "query(avg)", "recall")

	report := func(name string, build time.Duration, search func(q []float64) ([]series.Result, error)) {
		var total time.Duration
		recall := 0.0
		for i, q := range queries {
			start := time.Now()
			res, err := search(q)
			if err != nil {
				log.Fatal(err)
			}
			total += time.Since(start)
			recall += series.Recall(res, exact[i])
		}
		fmt.Printf("%-10s %-12v %-12v %-8.3f\n",
			name, build.Round(time.Millisecond),
			(total / numQueries).Round(time.Microsecond), recall/numQueries)
	}

	// --- CLIMBER (disk-based approximate) ---------------------------------
	dir, err := os.MkdirTemp("", "climber-compare-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	start := time.Now()
	db, err := climber.BuildDataset(dir, ds, climber.WithCapacity(800), climber.WithSeed(4))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	report("CLIMBER", time.Since(start), func(q []float64) ([]series.Result, error) {
		res, err := db.Search(q, k)
		if err != nil {
			return nil, err
		}
		out := make([]series.Result, len(res))
		for i, r := range res {
			out[i] = series.Result{ID: r.ID, Dist: r.Dist}
		}
		return out, nil
	})

	// --- Odyssey-style exact in-memory engine ------------------------------
	start = time.Now()
	engine, err := odyssey.Build(ds, odyssey.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	report("Odyssey", time.Since(start), func(q []float64) ([]series.Result, error) {
		res, _, err := engine.Search(q, k)
		return res, err
	})

	// --- HNSW (graph-based approximate) ------------------------------------
	start = time.Now()
	graph, err := hnsw.Build(ds, hnsw.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	report("HNSW", time.Since(start), func(q []float64) ([]series.Result, error) {
		return graph.Search(q, k)
	})

	fmt.Println("\nTable I in miniature: exact engine wins on query latency while data fits in")
	fmt.Println("memory; HNSW pays the graph-construction bill; CLIMBER balances both and is")
	fmt.Println("the only one whose partitions live on disk.")
}
