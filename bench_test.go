// Benchmarks: one testing.B target per table/figure of the paper's
// evaluation (Section VII). Each benchmark exercises the operation the
// artefact measures — query latency, build cost, recall — at a bench-sized
// workload; the full sweeps with paper-style rows come from
// cmd/climber-bench (see the experiment index in internal/experiments).
//
// Recall and effort are attached to benchmarks as custom metrics
// (recall, partitions/query, records/query) so `go test -bench` output
// carries the accuracy story alongside ns/op.
package climber

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"climber/internal/cluster"
	"climber/internal/core"
	"climber/internal/dataset"
	"climber/internal/dpisax"
	"climber/internal/dss"
	"climber/internal/hnsw"
	"climber/internal/metric"
	"climber/internal/odyssey"
	"climber/internal/series"
	"climber/internal/tardis"
)

// benchWork holds the lazily-built shared fixtures. Everything keys off the
// RandomWalk benchmark dataset, like the paper's parameter studies.
type benchWork struct {
	dir     string
	ds      *series.Dataset
	cl      *cluster.Cluster
	bs      *cluster.BlockSet
	climber *core.Index
	tardis  *tardis.Index
	dpisax  *dpisax.Index
	queries [][]float64
	exact   map[int][][]series.Result // keyed by K
}

const (
	benchSize     = 10000
	benchK        = 100
	benchQueries  = 10
	benchCapacity = 1000
)

var (
	benchOnce sync.Once
	bench     *benchWork
	benchErr  error
)

func benchConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Capacity = benchCapacity
	cfg.BlockSize = 1000
	return cfg
}

func getBench(b *testing.B) *benchWork {
	b.Helper()
	benchOnce.Do(func() {
		dir, err := os.MkdirTemp("", "climber-bench-fixtures-")
		if err != nil {
			benchErr = err
			return
		}
		w := &benchWork{dir: dir, exact: map[int][][]series.Result{}}
		w.ds = dataset.RandomWalk(dataset.RandomWalkLength, benchSize, 11)
		w.cl, err = cluster.New(cluster.Config{NumNodes: 2, WorkersPerNode: 2, BaseDir: dir})
		if err != nil {
			benchErr = err
			return
		}
		if w.bs, err = w.cl.IngestBlocks(w.ds, 1000, "bench"); err != nil {
			benchErr = err
			return
		}
		if w.climber, err = core.Build(w.cl, w.bs, benchConfig(), "bench-climber"); err != nil {
			benchErr = err
			return
		}
		tcfg := tardis.DefaultConfig()
		tcfg.Capacity = benchCapacity
		if w.tardis, err = tardis.Build(w.cl, w.bs, tcfg, "bench-tardis"); err != nil {
			benchErr = err
			return
		}
		dcfg := dpisax.DefaultConfig()
		dcfg.Capacity = benchCapacity
		if w.dpisax, err = dpisax.Build(w.cl, w.bs, dcfg, "bench-dpisax"); err != nil {
			benchErr = err
			return
		}
		_, w.queries = dataset.Queries(w.ds, benchQueries, 77)
		bench = w
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return bench
}

func (w *benchWork) groundTruth(k int) [][]series.Result {
	if got, ok := w.exact[k]; ok {
		return got
	}
	out := make([][]series.Result, len(w.queries))
	for i, q := range w.queries {
		out[i] = dss.SearchDataset(w.ds, q, k)
	}
	w.exact[k] = out
	return out
}

// reportRecall attaches the workload's average recall and effort to the
// benchmark result.
func reportRecall(b *testing.B, w *benchWork, k int, search func(q []float64) ([]series.Result, int, int)) {
	b.Helper()
	exact := w.groundTruth(k)
	recall, parts, recs := 0.0, 0, 0
	for i, q := range w.queries {
		res, p, r := search(q)
		recall += series.Recall(res, exact[i])
		parts += p
		recs += r
	}
	n := float64(len(w.queries))
	b.ReportMetric(recall/n, "recall")
	b.ReportMetric(float64(parts)/n, "partitions/query")
	b.ReportMetric(float64(recs)/n, "records/query")
}

// --- Figure 7(a)/(b): query time and recall per system ---------------------

func BenchmarkFig7QueryTime(b *testing.B) {
	w := getBench(b)
	b.Run("CLIMBER", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := w.queries[i%len(w.queries)]
			if _, err := w.climber.Search(q, core.SearchOptions{K: benchK, Variant: core.VariantAdaptive4X}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("TARDIS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := w.tardis.Search(w.queries[i%len(w.queries)], benchK); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("DPiSAX", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := w.dpisax.Search(w.queries[i%len(w.queries)], benchK); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Dss", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dss.Search(w.cl, w.bs, w.queries[i%len(w.queries)], benchK); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkFig7Recall(b *testing.B) {
	w := getBench(b)
	b.Run("CLIMBER", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			reportRecall(b, w, benchK, func(q []float64) ([]series.Result, int, int) {
				res, err := w.climber.Search(q, core.SearchOptions{K: benchK, Variant: core.VariantAdaptive4X})
				if err != nil {
					b.Fatal(err)
				}
				return res.Results, res.Stats.PartitionsScanned, res.Stats.RecordsScanned
			})
		}
	})
	b.Run("TARDIS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			reportRecall(b, w, benchK, func(q []float64) ([]series.Result, int, int) {
				res, err := w.tardis.Search(q, benchK)
				if err != nil {
					b.Fatal(err)
				}
				return res.Results, res.Stats.PartitionsScanned, res.Stats.RecordsScanned
			})
		}
	})
	b.Run("DPiSAX", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			reportRecall(b, w, benchK, func(q []float64) ([]series.Result, int, int) {
				res, err := w.dpisax.Search(q, benchK)
				if err != nil {
					b.Fatal(err)
				}
				return res.Results, res.Stats.PartitionsScanned, res.Stats.RecordsScanned
			})
		}
	})
}

// --- Figure 7(c)/(d) and 8(c)/(d): size scaling -----------------------------

func BenchmarkFig7Scale(b *testing.B) {
	for _, n := range []int{2500, 5000, 10000} {
		b.Run(fmt.Sprintf("size=%d", n), func(b *testing.B) {
			dir := b.TempDir()
			cl, err := cluster.New(cluster.Config{NumNodes: 2, WorkersPerNode: 2, BaseDir: dir})
			if err != nil {
				b.Fatal(err)
			}
			ds := dataset.RandomWalk(dataset.RandomWalkLength, n, 3)
			bs, err := cl.IngestBlocks(ds, n/10, "scale")
			if err != nil {
				b.Fatal(err)
			}
			cfg := benchConfig()
			cfg.Capacity = n / 10
			cfg.BlockSize = n / 10
			ix, err := core.Build(cl, bs, cfg, "scale")
			if err != nil {
				b.Fatal(err)
			}
			_, qs := dataset.Queries(ds, 5, 7)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ix.Search(qs[i%len(qs)], core.SearchOptions{K: benchK, Variant: core.VariantAdaptive4X}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 8(a)/(b): index construction ------------------------------------

func BenchmarkFig8Build(b *testing.B) {
	const n = 5000
	newEnv := func(b *testing.B) (*cluster.Cluster, *cluster.BlockSet) {
		b.Helper()
		cl, err := cluster.New(cluster.Config{NumNodes: 2, WorkersPerNode: 2, BaseDir: b.TempDir()})
		if err != nil {
			b.Fatal(err)
		}
		ds := dataset.RandomWalk(dataset.RandomWalkLength, n, 5)
		bs, err := cl.IngestBlocks(ds, 500, "build")
		if err != nil {
			b.Fatal(err)
		}
		return cl, bs
	}
	b.Run("CLIMBER", func(b *testing.B) {
		cl, bs := newEnv(b)
		cfg := benchConfig()
		cfg.Capacity = 500
		cfg.BlockSize = 500
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ix, err := core.Build(cl, bs, cfg, fmt.Sprintf("b%d", i))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(ix.Skeleton().EncodedSize()), "skeleton-bytes")
		}
	})
	b.Run("TARDIS", func(b *testing.B) {
		cl, bs := newEnv(b)
		cfg := tardis.DefaultConfig()
		cfg.Capacity = 500
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ix, err := tardis.Build(cl, bs, cfg, fmt.Sprintf("b%d", i))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(ix.TreeSize()), "tree-bytes")
		}
	})
	b.Run("DPiSAX", func(b *testing.B) {
		cl, bs := newEnv(b)
		cfg := dpisax.DefaultConfig()
		cfg.Capacity = 500
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ix, err := dpisax.Build(cl, bs, cfg, fmt.Sprintf("b%d", i))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(ix.TreeSize()), "tree-bytes")
		}
	})
}

// --- Figure 9: K sweep -------------------------------------------------------

func BenchmarkFig9KSweep(b *testing.B) {
	w := getBench(b)
	for _, k := range []int{10, 50, 100, 200, 400} {
		for _, vc := range []struct {
			name string
			v    core.Variant
		}{{"kNN", core.VariantKNN}, {"Adaptive2X", core.VariantAdaptive2X}, {"Adaptive4X", core.VariantAdaptive4X}} {
			b.Run(fmt.Sprintf("K=%d/%s", k, vc.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := w.climber.Search(w.queries[i%len(w.queries)], core.SearchOptions{K: k, Variant: vc.v}); err != nil {
						b.Fatal(err)
					}
				}
				reportRecall(b, w, k, func(q []float64) ([]series.Result, int, int) {
					res, err := w.climber.Search(q, core.SearchOptions{K: k, Variant: vc.v})
					if err != nil {
						b.Fatal(err)
					}
					return res.Results, res.Stats.PartitionsScanned, res.Stats.RecordsScanned
				})
			})
		}
	}
}

// --- Figure 10: pivot-count sweep ---------------------------------------------

func BenchmarkFig10Pivots(b *testing.B) {
	const n = 5000
	for _, r := range []int{50, 100, 200} {
		b.Run(fmt.Sprintf("r=%d", r), func(b *testing.B) {
			cl, err := cluster.New(cluster.Config{NumNodes: 2, WorkersPerNode: 2, BaseDir: b.TempDir()})
			if err != nil {
				b.Fatal(err)
			}
			ds := dataset.RandomWalk(dataset.RandomWalkLength, n, 5)
			bs, err := cl.IngestBlocks(ds, 500, "piv")
			if err != nil {
				b.Fatal(err)
			}
			cfg := benchConfig()
			cfg.Capacity = 500
			cfg.BlockSize = 500
			cfg.NumPivots = r
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ix, err := core.Build(cl, bs, cfg, fmt.Sprintf("p%d-%d", r, i))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(ix.Stats.Skeleton.Milliseconds()), "skeleton-ms")
				b.ReportMetric(float64(ix.Stats.Conversion.Milliseconds()), "conversion-ms")
				b.ReportMetric(float64(ix.Stats.Redistribution.Milliseconds()), "redistribution-ms")
			}
		})
	}
}

// --- Figure 11: adaptive variants and OD-Smallest ------------------------------

func BenchmarkFig11Adaptive(b *testing.B) {
	w := getBench(b)
	// Stress K beyond typical trie-node capacity so adaptivity engages.
	const k = 400
	for _, vc := range []struct {
		name string
		v    core.Variant
	}{{"kNN", core.VariantKNN}, {"Adaptive2X", core.VariantAdaptive2X}, {"Adaptive4X", core.VariantAdaptive4X}} {
		b.Run(vc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := w.climber.Search(w.queries[i%len(w.queries)], core.SearchOptions{K: k, Variant: vc.v}); err != nil {
					b.Fatal(err)
				}
			}
			reportRecall(b, w, k, func(q []float64) ([]series.Result, int, int) {
				res, err := w.climber.Search(q, core.SearchOptions{K: k, Variant: vc.v})
				if err != nil {
					b.Fatal(err)
				}
				return res.Results, res.Stats.PartitionsScanned, res.Stats.RecordsScanned
			})
		})
	}
}

func BenchmarkFig11ODSmallest(b *testing.B) {
	w := getBench(b)
	b.Run("ODSmallest", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := w.climber.Search(w.queries[i%len(w.queries)], core.SearchOptions{K: benchK, Variant: core.VariantODSmallest}); err != nil {
				b.Fatal(err)
			}
		}
		reportRecall(b, w, benchK, func(q []float64) ([]series.Result, int, int) {
			res, err := w.climber.Search(q, core.SearchOptions{K: benchK, Variant: core.VariantODSmallest})
			if err != nil {
				b.Fatal(err)
			}
			return res.Results, res.Stats.PartitionsScanned, res.Stats.RecordsScanned
		})
	})
}

// --- Figure 12: prefix-length sweep ---------------------------------------------

func BenchmarkFig12PrefixLen(b *testing.B) {
	const n = 5000
	for _, m := range []int{6, 10, 20} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			cl, err := cluster.New(cluster.Config{NumNodes: 2, WorkersPerNode: 2, BaseDir: b.TempDir()})
			if err != nil {
				b.Fatal(err)
			}
			ds := dataset.RandomWalk(dataset.RandomWalkLength, n, 5)
			bs, err := cl.IngestBlocks(ds, 500, "pfx")
			if err != nil {
				b.Fatal(err)
			}
			cfg := benchConfig()
			cfg.Capacity = 500
			cfg.BlockSize = 500
			cfg.PrefixLen = m
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ix, err := core.Build(cl, bs, cfg, fmt.Sprintf("m%d-%d", m, i))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(ix.Skeleton().EncodedSize()), "skeleton-bytes")
			}
		})
	}
}

// --- Ablations: design choices the experiments package calls out --------------------------------

func BenchmarkAblationDecay(b *testing.B) {
	const n = 5000
	for _, kind := range []struct {
		name  string
		decay metric.DecayKind
	}{{"exponential", metric.ExponentialDecay}, {"linear", metric.LinearDecay}} {
		b.Run(kind.name, func(b *testing.B) {
			cl, err := cluster.New(cluster.Config{NumNodes: 2, WorkersPerNode: 2, BaseDir: b.TempDir()})
			if err != nil {
				b.Fatal(err)
			}
			ds := dataset.RandomWalk(dataset.RandomWalkLength, n, 5)
			bs, err := cl.IngestBlocks(ds, 500, "dk")
			if err != nil {
				b.Fatal(err)
			}
			cfg := benchConfig()
			cfg.Capacity = 500
			cfg.BlockSize = 500
			cfg.Decay = kind.decay
			cfg.Lambda = 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Build(cl, bs, cfg, fmt.Sprintf("dk%d", i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationDualRepresentation(b *testing.B) {
	w := getBench(b)
	for _, c := range []struct {
		name    string
		disable bool
	}{{"OD+WD", false}, {"OD+random", true}} {
		b.Run(c.name, func(b *testing.B) {
			cfg := benchConfig()
			cfg.DisableWDTieBreak = c.disable
			ix, err := core.Build(w.cl, w.bs, cfg, fmt.Sprintf("dual-%v", c.disable))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ix.Search(w.queries[i%len(w.queries)], core.SearchOptions{K: benchK, Variant: core.VariantAdaptive4X}); err != nil {
					b.Fatal(err)
				}
			}
			reportRecall(b, w, benchK, func(q []float64) ([]series.Result, int, int) {
				res, err := ix.Search(q, core.SearchOptions{K: benchK, Variant: core.VariantAdaptive4X})
				if err != nil {
					b.Fatal(err)
				}
				return res.Results, res.Stats.PartitionsScanned, res.Stats.RecordsScanned
			})
		})
	}
}

// --- Partition cache: warm vs cold query path --------------------------------------

// BenchmarkPartitionCache compares the repeated-query hot path with the
// shared partition cache off ("cold": every partition open is a disk load,
// the paper's cost model) and on ("warm": repeats served from the
// byte-budgeted LRU). partition-loads/op counts real disk loads per query —
// with a warm cache it collapses towards zero while recall and answers are
// identical (see TestPartitionCacheEquivalence).
func BenchmarkPartitionCache(b *testing.B) {
	dir := b.TempDir()
	ds := dataset.RandomWalk(dataset.RandomWalkLength, benchSize, 11)
	sds := series.NewDatasetCap(ds.Length(), ds.Len())
	data := make([][]float64, ds.Len())
	for i := range data {
		data[i] = ds.Get(i)
		sds.Append(ds.Get(i))
	}
	buildDir := dir + "/db"
	buildAndClose(b, buildDir, data,
		WithCapacity(benchCapacity), WithBlockSize(1000), WithSeed(11))
	_, queries := dataset.Queries(sds, benchQueries, 77)

	for _, c := range []struct {
		name  string
		bytes int64
	}{{"cold", 0}, {"warm", 256 << 20}} {
		b.Run(c.name, func(b *testing.B) {
			db, err := Open(buildDir, WithPartitionCacheBytes(c.bytes))
			if err != nil {
				b.Fatal(err)
			}
			// Close before the next subcase opens the directory: the WAL
			// carries a single-writer lock.
			b.Cleanup(func() { db.Close() })
			// One pass outside the timer so "warm" measures the steady
			// state, not the first-touch loads.
			for _, q := range queries {
				if _, err := db.Search(q, benchK); err != nil {
					b.Fatal(err)
				}
			}
			start := db.CacheStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Search(queries[i%len(queries)], benchK); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			cs := db.CacheStats()
			b.ReportMetric(float64(cs.PartitionsLoaded-start.PartitionsLoaded)/float64(b.N), "partition-loads/op")
			if c.bytes > 0 {
				b.ReportMetric(float64(cs.BytesSaved-start.BytesSaved)/float64(b.N), "bytes-saved/op")
			}
		})
	}
}

// BenchmarkPartitionCacheBatch measures the concurrent batch path, where
// the singleflight cache additionally coalesces simultaneous loads of the
// same partition across queries.
func BenchmarkPartitionCacheBatch(b *testing.B) {
	dir := b.TempDir()
	ds := dataset.RandomWalk(dataset.RandomWalkLength, benchSize, 11)
	sds := series.NewDatasetCap(ds.Length(), ds.Len())
	data := make([][]float64, ds.Len())
	for i := range data {
		data[i] = ds.Get(i)
		sds.Append(ds.Get(i))
	}
	buildDir := dir + "/db"
	buildAndClose(b, buildDir, data,
		WithCapacity(benchCapacity), WithBlockSize(1000), WithSeed(11))
	_, queries := dataset.Queries(sds, 32, 77)

	for _, c := range []struct {
		name  string
		bytes int64
	}{{"cold", 0}, {"warm", 256 << 20}} {
		b.Run(c.name, func(b *testing.B) {
			db, err := Open(buildDir, WithPartitionCacheBytes(c.bytes))
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { db.Close() })
			// One untimed batch so "warm" measures the steady state.
			if _, err := db.SearchBatch(queries, benchK); err != nil {
				b.Fatal(err)
			}
			start := db.CacheStats().PartitionsLoaded
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.SearchBatch(queries, benchK); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(db.CacheStats().PartitionsLoaded-start)/float64(b.N), "partition-loads/op")
		})
	}
}

// --- Prefix queries: the PAA-flexibility feature -----------------------------------

func BenchmarkPrefixQuery(b *testing.B) {
	w := getBench(b)
	q := make([]float64, 64)
	copy(q, w.queries[0][:64])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.climber.SearchPrefix(q, core.SearchOptions{K: benchK, Variant: core.VariantAdaptive4X}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table I: CLIMBER vs Odyssey vs ParlayANN-HNSW -------------------------------

func BenchmarkTable1(b *testing.B) {
	w := getBench(b)
	b.Run("CLIMBER/query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := w.climber.Search(w.queries[i%len(w.queries)], core.SearchOptions{K: benchK, Variant: core.VariantAdaptive4X}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Odyssey/build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := odyssey.Build(w.ds, odyssey.DefaultConfig()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Odyssey/query", func(b *testing.B) {
		engine, err := odyssey.Build(w.ds, odyssey.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := engine.Search(w.queries[i%len(w.queries)], benchK); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("HNSW/query", func(b *testing.B) {
		// The graph is built once: HNSW construction at bench size takes
		// seconds and Table I charges it to I.C.T, not Q.R.T.
		cfg := hnsw.DefaultConfig()
		graph, err := hnsw.Build(w.ds, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := graph.Search(w.queries[i%len(w.queries)], benchK); err != nil {
				b.Fatal(err)
			}
		}
	})
}
