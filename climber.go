// Package climber is a Go implementation of CLIMBER, the pivot-based
// framework for approximate kNN similarity search over big data series
// (Zhang, Eltabakh, Rundensteiner, Alnuaim — ICDE 2024, extended version
// arXiv:2404.09637).
//
// CLIMBER represents each data series by a dual pivot-permutation-prefix
// signature — a rank-sensitive P4→ vector (the IDs of its m nearest pivots,
// closest first) and a rank-insensitive P4↛ vector (the same IDs sorted) —
// and organises the dataset into a two-level disk-persistent index: coarse
// data-series groups formed in the rank-insensitive space and fine-grained
// Voronoi-aligned partitions carved by rank-sensitive tries. Queries
// navigate the tiny in-memory skeleton to a handful of partitions and rank
// candidates with the true Euclidean distance.
//
// # Quick start
//
//	db, err := climber.Build(dir, data)           // data: [][]float64, equal lengths
//	res, err := db.Search(query, 100)             // top-100 approximate neighbours
//	res, err := db.Search(query, 100, climber.WithVariant(climber.Adaptive4X))
//
// A built database persists under its directory and reopens with
// climber.Open(dir).
//
// # Partition cache
//
// By default every query pays the paper's partition-load cost: each
// partition it touches is opened and read from disk. Query-heavy workloads
// should enable the shared partition cache, a byte-budgeted LRU of decoded
// partitions with singleflight loading that serves repeated and concurrent
// accesses from memory:
//
//	db, err := climber.Open(dir, climber.WithPartitionCacheBytes(256<<20))
//	// ... Search / SearchBatch as usual; db.CacheStats() reports the effect.
//
// # Anytime queries
//
// Every query runs on a planner/executor engine (internal/core): the
// planner ranks the partitions worth scanning, the executor runs them step
// by step. Budgets bound a query's effort — it stops at a step boundary
// and returns its best partial answer (Stats.Partial):
//
//	res, stats, err := db.SearchWithStats(q, 100, climber.WithTimeBudget(5*time.Millisecond))
//	res, stats, err := db.SearchWithStats(q, 100, climber.WithMaxPartitions(2))
//
// SearchProgressive streams a monotonically improving snapshot after every
// executed step, so consumers can render early answers or stop when
// satisfied.
//
// # Serving, cancellation, and Close
//
// Every query method has a ...Context variant (SearchContext,
// SearchBatchContext, SearchPrefixContext, and the WithStats forms) that
// honours cancellation on the partition-scan path: a cancelled context
// stops the query's scanning goroutines between cluster scans and returns
// ctx.Err(). Long-lived processes should Close the DB when done — Close
// purges the partition cache and makes subsequent calls return ErrClosed.
// cmd/climber-serve exposes an opened DB as a concurrent HTTP JSON service
// (see internal/server) built on exactly these APIs.
//
// # Live ingestion
//
// Every DB carries a streaming write path (internal/ingest): Append and
// AppendContext route new series through the existing index layout, fsync
// them into a write-ahead log under the database directory, and insert them
// into an in-memory delta index that every search merges into its answer.
// An acked append is therefore durable (a kill -9 later, Open replays the
// WAL) and immediately searchable. A background compactor drains the delta
// into the partition files once it grows past WithCompactionRecords records
// or its oldest entry ages past WithCompactionAge; Flush forces that drain
// synchronously. Appends may be issued from any number of goroutines — the
// DB serialises writes internally.
package climber

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"climber/internal/cluster"
	"climber/internal/core"
	"climber/internal/ingest"
	"climber/internal/metric"
	"climber/internal/series"
)

// Version identifies this build of the library on the wire: the
// climber_build_info Prometheus gauge exports it, and operators use it
// to correlate deployed binaries with metric changes.
const Version = "0.9.0"

// ErrClosed is returned by every query and mutation method of a DB after
// Close. Use errors.Is to test for it.
var ErrClosed = errors.New("climber: database is closed")

// ErrReadOnly is returned by Append and Flush on a DB opened with
// WithReadOnly. Use errors.Is to test for it.
var ErrReadOnly = errors.New("climber: database opened read-only")

// ErrReindexInProgress is returned by Reindex while another reindex is
// already running, and by Flush and Backup while a reindex holds the
// compaction pipeline paused. Appends and searches are never affected by a
// running reindex. Use errors.Is to test for it.
var ErrReindexInProgress = errors.New("climber: reindex in progress")

// Result is one approximate nearest neighbour: the ID (the position of the
// series in the build input) and its Euclidean distance to the query.
type Result struct {
	ID   int
	Dist float64
}

// Stats describes the effort behind one query.
type Stats struct {
	// GroupsConsidered is the number of candidate groups after signature
	// matching.
	GroupsConsidered int
	// TargetNodeSize is the estimated record count of the best-matching
	// trie node; TargetPathLen is the matched root-to-node path length.
	// On a sharded query both report the deepest/widest shard (max), since
	// a per-shard trie descent has no meaningful sum.
	TargetNodeSize, TargetPathLen int
	// PartitionsScanned is the number of physical partitions loaded.
	PartitionsScanned int
	// RecordsScanned is the number of raw series compared with the query.
	RecordsScanned int
	// BytesLoaded approximates the I/O volume of the query.
	BytesLoaded int64
	// DeltaScanned is the subset of RecordsScanned served by the in-memory
	// delta index — appended series not yet compacted into partition files.
	DeltaScanned int
	// PartitionCacheHits and PartitionCacheMisses count the query's
	// partition opens served from / missing the shared partition cache
	// (see WithPartitionCacheBytes); both are zero when the cache is off.
	PartitionCacheHits, PartitionCacheMisses int
	// StepsPlanned is the number of executable steps (distinct partitions)
	// the query planner emitted; StepsExecuted counts how many actually
	// ran. They differ when a budget stopped the plan early; an answer can
	// also be Partial with all steps executed (the budget expired during
	// the within-partition widening pass), so test Partial, not the
	// counters, to detect truncation.
	StepsPlanned, StepsExecuted int
	// Partial marks an answer whose execution stopped before the full plan
	// — a budget (WithTimeBudget, WithMaxPartitions) ran out or a
	// progressive consumer stopped the query. The results are still the
	// best answer for the effort spent.
	Partial bool
	// BudgetExhausted names the budget dimension that stopped a Partial
	// query ("max-partitions", "deadline", "min-records", "callback");
	// empty when the plan ran to completion.
	BudgetExhausted string
}

// IngestStats reports the cumulative state of the DB's streaming write
// path: the write-ahead log, the in-memory delta index, and the background
// compactor.
type IngestStats struct {
	// AppendCalls and AppendedSeries count acked Append/AppendContext
	// invocations and the series they carried.
	AppendCalls, AppendedSeries int64
	// ReplayedSeries counts WAL entries restored into the delta when the
	// database was opened (non-zero only after recovering from a kill).
	ReplayedSeries int64
	// WALBytes is the write-ahead log's current size.
	WALBytes int64
	// Compactions and CompactedSeries count completed compactions and the
	// records they moved from the delta into partition files.
	Compactions, CompactedSeries int64
	// DeltaRecords and DeltaBytes describe the resident delta index: acked
	// writes awaiting compaction.
	DeltaRecords int
	DeltaBytes   int64
	// CompactErrors counts failed background compaction attempts; each is
	// retried on the next trigger.
	CompactErrors int64
}

// CacheStats reports the cumulative effect of the shared partition cache
// across every query answered by this DB. The cache counters (Hits,
// Misses, Evictions, BytesSaved) are all zero when the cache is off;
// PartitionsLoaded is maintained either way.
type CacheStats struct {
	// Hits counts partition opens served from memory; Misses counts opens
	// that had to load the partition file from disk.
	Hits, Misses int64
	// Evictions counts partitions dropped to stay within the byte budget.
	Evictions int64
	// BytesSaved is the partition-file volume hits avoided re-reading.
	BytesSaved int64
	// PartitionsLoaded counts real disk loads (the cost the paper's
	// query-time model charges); with a warm cache it grows far slower
	// than the number of partition opens.
	PartitionsLoaded int64
	// ResidentBytes is the cache's current charge against its byte budget:
	// directory metadata plus decoded or mapped partition bytes.
	// MappedBytes is the subset served by read-only memory mappings (see
	// WithMmap); for those the kernel can reclaim pages under pressure, so
	// MappedBytes bounds page-cache footprint rather than heap.
	ResidentBytes, MappedBytes int64
}

// Explanation is the engine's record of how one query navigated the
// index: the dual signature, group selection, matched trie path, and
// the ranked plan with per-step scores and executed flags.
type Explanation = core.Explanation

// PlanStepInfo is one ranked plan step inside an Explanation.
type PlanStepInfo = core.PlanStepInfo

// Variant selects the query algorithm.
type Variant = core.Variant

// Query algorithm variants (paper Section VI).
const (
	// KNN is the base CLIMBER-kNN algorithm: one best-matching trie node.
	KNN = core.VariantKNN
	// Adaptive2X expands to more trie nodes, capped at 2x the base
	// partition count.
	Adaptive2X = core.VariantAdaptive2X
	// Adaptive4X caps at 4x — the paper's default variation.
	Adaptive4X = core.VariantAdaptive4X
	// ODSmallest scans every group at the smallest overlap distance — an
	// expensive high-recall upper bound.
	ODSmallest = core.VariantODSmallest
)

// Option customises Build and Open.
type Option func(*options)

type options struct {
	cfg        core.Config
	nodes      int
	workers    int
	cacheBytes int64
	mmap       bool
	ingest     ingest.Config
	readOnly   bool
}

// WithSegments sets the PAA segment count w (default 16).
func WithSegments(w int) Option { return func(o *options) { o.cfg.Segments = w } }

// WithPivots sets the number of Voronoi pivots r (default 200).
func WithPivots(r int) Option { return func(o *options) { o.cfg.NumPivots = r } }

// WithPrefixLen sets the pivot-permutation prefix length m (default 10).
func WithPrefixLen(m int) Option { return func(o *options) { o.cfg.PrefixLen = m } }

// WithCapacity sets the partition capacity in records.
func WithCapacity(c int) Option { return func(o *options) { o.cfg.Capacity = c } }

// WithSampleRate sets the skeleton-construction sampling fraction α.
func WithSampleRate(a float64) Option { return func(o *options) { o.cfg.SampleRate = a } }

// WithSeed fixes the random seed for reproducible builds.
func WithSeed(s uint64) Option { return func(o *options) { o.cfg.Seed = s } }

// WithBlockSize sets the raw-storage block size in records.
func WithBlockSize(b int) Option { return func(o *options) { o.cfg.BlockSize = b } }

// WithMaxCentroids caps the number of data-series groups.
func WithMaxCentroids(n int) Option { return func(o *options) { o.cfg.MaxCentroids = n } }

// WithLinearDecay switches pivot weighting from exponential to linear decay.
func WithLinearDecay() Option {
	return func(o *options) { o.cfg.Decay = metric.LinearDecay; o.cfg.Lambda = 0 }
}

// WithDecayRate sets the decay rate lambda in (0, 1].
func WithDecayRate(l float64) Option { return func(o *options) { o.cfg.Lambda = l } }

// WithNodes sets the number of simulated storage nodes (default 2).
func WithNodes(n int) Option { return func(o *options) { o.nodes = n } }

// WithWorkers sets the per-node worker parallelism (default 2).
func WithWorkers(n int) Option { return func(o *options) { o.workers = n } }

// WithBuildWorkers sets the goroutine parallelism of the CPU-bound skeleton-
// construction phases (PAA transforms, signature aggregation, group
// assignment); 0 (the default) uses every available core, 1 forces the
// sequential build. The built index is bit-identical at any worker count —
// this knob trades build wall-clock only, never layout. The scan-heavy
// conversion and shuffle phases follow WithNodes x WithWorkers instead.
func WithBuildWorkers(n int) Option { return func(o *options) { o.cfg.Workers = n } }

// WithPartitionCacheBytes installs a shared partition cache budgeted at n
// bytes under the query path: a byte-budgeted LRU of decoded partitions
// with singleflight loading, shared by Search, SearchPrefix, SearchBatch
// and the within-partition widening pass. Partitions are immutable after
// build, so caching them is safe under any query concurrency; Append
// invalidates the partitions it rewrites.
//
// The budget bounds the *resident cache entries*, not total process
// memory: loads in flight and partitions still referenced by running
// queries after eviction live outside it, so peak usage can transiently
// exceed n by roughly one partition per concurrent cold query. Leave
// headroom when sizing for a memory-constrained deployment.
//
// n = 0 (the default) disables the cache, preserving the original
// per-query partition-load cost accounting that the paper-faithful
// experiment harnesses measure. Repeated or concurrent query workloads
// should enable it — a budget of a few hundred megabytes typically keeps
// the whole working set resident.
func WithPartitionCacheBytes(n int64) Option {
	return func(o *options) { o.cacheBytes = n }
}

// WithMmap makes cached partition loads memory-map the immutable partition
// files read-only instead of decoding them onto the heap. Scans then rank
// records straight from the mapped bytes — zero per-record allocation, and
// the resident set is file-backed pages the kernel can drop under memory
// pressure. Results are bit-identical to the heap-decoded and file-backed
// paths (all three rank through the same raw float32 kernel). On platforms
// without mmap support — or if an individual mapping fails — loads silently
// degrade to the heap copy. The option only affects cached loads, so it is
// a no-op unless WithPartitionCacheBytes enables the cache.
func WithMmap(on bool) Option {
	return func(o *options) { o.mmap = on }
}

// WithCompactionRecords sets how many acked-but-uncompacted records the
// in-memory delta index may hold before the background compactor drains it
// into partition files (default 4096). Lower values bound delta memory and
// WAL replay time; higher values batch more records per partition rewrite.
func WithCompactionRecords(n int) Option {
	return func(o *options) { o.ingest.CompactRecords = n }
}

// WithCompactionAge sets how long the oldest uncompacted record may wait
// before a compaction is forced regardless of volume (default 5s), bounding
// WAL replay time under a trickle of writes.
func WithCompactionAge(d time.Duration) Option {
	return func(o *options) { o.ingest.CompactAge = d }
}

// WithReadOnly opens the database without its streaming write path: no WAL
// is opened or replayed, no compactor runs, and Append/Flush return
// ErrReadOnly. This is how tools inspect a directory a live writer owns —
// a second writer would replay and truncate the owner's WAL out from under
// it, so the WAL carries a single-writer file lock and read-only is the
// supported concurrent-access mode. Records still in the owner's WAL (not
// yet compacted) are not visible to a read-only open.
func WithReadOnly() Option {
	return func(o *options) { o.readOnly = true }
}

// SearchOption customises a single Search call.
type SearchOption func(*core.SearchOptions)

// WithVariant selects the query algorithm (default Adaptive4X, the paper's
// default variation).
func WithVariant(v Variant) SearchOption {
	return func(s *core.SearchOptions) { s.Variant = v }
}

// WithMaxPartitions bounds a query to at most n partition loads. For the
// adaptive variants it shrinks the plan (the paper's MaxNumPartitions
// parameter); for every variant it is additionally enforced as an
// execution budget, so a plan that still wants more partitions (KNN's base
// node spanning several, OD-Smallest's whole-group scans) stops after n
// loads and returns its best answer marked partial (Stats.Partial).
func WithMaxPartitions(n int) SearchOption {
	return func(s *core.SearchOptions) {
		s.MaxPartitions = n
		s.Budget.MaxPartitions = n
	}
}

// WithTimeBudget turns the query into an anytime query: the engine stops
// at the first plan-step boundary past the budget and returns the best
// answer assembled so far, marked partial (Stats.Partial with
// Stats.BudgetExhausted = "deadline"). Scans are never interrupted
// mid-partition, so the overshoot is bounded by one step; combine with a
// request context deadline for a hard stop. d <= 0 is ignored.
//
// Cost: enforcing step boundaries means the plan's partitions scan one at
// a time in rank order instead of concurrently, so a multi-partition
// query under a generous time budget runs somewhat longer than an
// unbudgeted one. Use WithMaxPartitions (which keeps the concurrent scan)
// when the goal is an I/O cap rather than a wall-clock contract.
func WithTimeBudget(d time.Duration) SearchOption {
	return func(s *core.SearchOptions) {
		if d > 0 {
			s.Budget.Deadline = time.Now().Add(d)
		}
	}
}

// WithMinRecords is a recall proxy budget: the query stops once at least n
// candidate records have been compared, returning a partial answer when
// the plan held more. More candidates compared means higher expected
// recall, so callers can trade accuracy for latency without reasoning
// about partitions or wall-clock time. Like WithTimeBudget, it trades the
// plan's partition parallelism for step-boundary control.
func WithMinRecords(n int) SearchOption {
	return func(s *core.SearchOptions) { s.Budget.MinRecords = n }
}

// WithExplain attaches the planner's navigation record to the query;
// retrieve it with SearchExplainContext (the plain Search methods
// compute and discard it). Tracing is orthogonal: span timings come
// from an obs.Trace carried in the context, explanations from this
// flag; an explain response on the wire carries both.
func WithExplain() SearchOption {
	return func(s *core.SearchOptions) { s.Explain = true }
}

// DB is a built CLIMBER database. A DB is safe for concurrent use; the
// query and append methods may be called from any number of goroutines —
// writes are serialised internally by the ingestion pipeline. Close
// releases its resources — long-lived processes (servers, tests) should
// defer it.
type DB struct {
	dir    string
	ix     *core.Index
	cl     *cluster.Cluster
	ing    *ingest.Ingester
	closed atomic.Bool

	// nodes is the simulated-cluster width; Reindex lays the new
	// generation's partition files out over the same number of node
	// directories the build used.
	nodes int
	// genNum is the active generation number (0 = the build-time layout at
	// dir itself, N = dir/gen-NNNN). Written only under the ingestion
	// semaphore (the swap is part of CommitRebuild's publish step); read
	// anywhere.
	genNum atomic.Int64
	// reindexing serialises Reindex calls: one rebuild at a time.
	reindexing atomic.Bool
	// cleanupWG tracks the deferred deletion of swapped-out generations
	// (each waits for its generation's readers to drain). Tests join it;
	// Close does not — an orphaned old generation is reclaimed by the next
	// Open's stale-generation sweep.
	cleanupWG sync.WaitGroup
}

func buildOptions(opts []Option) options {
	o := options{cfg: core.DefaultConfig(), nodes: 2, workers: 2}
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

func newCluster(dir string, o options) (*cluster.Cluster, error) {
	cl, err := cluster.New(cluster.Config{
		NumNodes:       o.nodes,
		WorkersPerNode: o.workers,
		BaseDir:        filepath.Join(dir, "cluster"),
	})
	if err != nil {
		return nil, err
	}
	if o.cacheBytes > 0 {
		cl.EnablePartitionCache(o.cacheBytes)
		cl.EnableMmap(o.mmap)
	}
	return cl, nil
}

// indexPath is the generation-0 skeleton/manifest location; later
// generations live under gen-NNNN directories (see internal/core's
// generation helpers and DB.activeRoot).
//
//climber:genpath
func indexPath(dir string) string { return filepath.Join(dir, "index.clms") }

// walPath is the write-ahead log location. The WAL lives at the database
// root across generations: replay filters by record ID against the active
// manifest's counts, so it never needs to move during a reindex.
//
//climber:genpath
func walPath(dir string) string { return filepath.Join(dir, "wal.clmw") }

// activeRoot returns the directory holding the active generation's skeleton
// and partition files.
func (db *DB) activeRoot() string {
	if n := db.genNum.Load(); n > 0 {
		return core.GenDir(db.dir, int(n))
	}
	return db.dir
}

// attachIngest starts the streaming write path on a freshly built or opened
// index: WAL replay, delta install, background compactor. The manifest-save
// callback resolves the active generation at each call, so compactions that
// run after a reindex swap persist into the new generation's index file.
func (db *DB) attachIngest(o options) (*ingest.Ingester, error) {
	return ingest.Open(db.ix, walPath(db.dir), func() error {
		return core.SaveIndex(db.ix, core.IndexPathIn(db.activeRoot()))
	}, o.ingest)
}

// Build constructs a CLIMBER database in dir over the given data series.
// All series must have the same length. The input is copied; the returned
// DB is ready to query and persists under dir for later Open calls.
func Build(dir string, data [][]float64, opts ...Option) (*DB, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("climber: empty dataset")
	}
	ds := series.NewDatasetCap(len(data[0]), len(data))
	for i, x := range data {
		if len(x) != ds.Length() {
			return nil, fmt.Errorf("climber: series %d has length %d, want %d", i, len(x), ds.Length())
		}
		ds.Append(x)
	}
	return BuildDataset(dir, ds, opts...)
}

// BuildDataset is Build over an already-materialised internal dataset; it
// is the entry point used by the command-line tools and experiment
// harnesses, which stream datasets without [][]float64 overhead.
func BuildDataset(dir string, ds *series.Dataset, opts ...Option) (*DB, error) {
	o := buildOptions(opts)
	if err := o.cfg.Validate(); err != nil {
		return nil, err
	}
	cl, err := newCluster(dir, o)
	if err != nil {
		return nil, err
	}
	bs, err := cl.IngestBlocks(ds, o.cfg.BlockSize, "data")
	if err != nil {
		cl.Close()
		return nil, err
	}
	ix, err := core.Build(cl, bs, o.cfg, "climber")
	if err != nil {
		cl.Close()
		return nil, err
	}
	if err := core.SaveIndex(ix, indexPath(dir)); err != nil {
		cl.Close()
		return nil, err
	}
	// A build defines a brand-new database; a WAL left in dir by a previous
	// one must not replay its (differently-IDed, possibly differently-
	// shaped) entries into the fresh index.
	if err := os.Remove(walPath(dir)); err != nil && !os.IsNotExist(err) {
		cl.Close()
		return nil, fmt.Errorf("climber: remove stale WAL: %w", err)
	}
	db := &DB{dir: dir, ix: ix, cl: cl, nodes: o.nodes}
	ing, err := db.attachIngest(o)
	if err != nil {
		cl.Close()
		return nil, err
	}
	db.ing = ing
	return db, nil
}

// Open loads a database previously built in dir. Acked appends that were
// never compacted (the process was killed) are restored from the write-ahead
// log before Open returns: they are searchable immediately and the
// background compactor lands them in partition files shortly after.
func Open(dir string, opts ...Option) (*DB, error) {
	o := buildOptions(opts)
	// The MANIFEST pointer names the active generation; a database that has
	// never been reindexed has no MANIFEST and stays on its build layout.
	root, genNum, err := core.ActiveGeneration(dir)
	if err != nil {
		return nil, err
	}
	cl, err := newCluster(dir, o)
	if err != nil {
		return nil, err
	}
	ix, err := core.OpenIndex(cl, core.IndexPathIn(root))
	if err != nil {
		cl.Close()
		return nil, err
	}
	db := &DB{dir: dir, ix: ix, cl: cl, nodes: o.nodes}
	db.genNum.Store(int64(genNum))
	if o.readOnly {
		return db, nil
	}
	// Sweep debris the pointer does not reference: half-built generations a
	// crashed reindex left behind, or a superseded generation whose deferred
	// deletion never ran. Best-effort — stale files are unreferenced, so a
	// failed sweep costs only disk space.
	_ = core.CleanStaleGenerations(dir, genNum)
	ing, err := db.attachIngest(o)
	if err != nil {
		cl.Close()
		return nil, err
	}
	db.ing = ing
	return db, nil
}

// searchOptions folds per-call options over the library defaults.
func searchOptions(k int, opts []SearchOption) core.SearchOptions {
	so := core.SearchOptions{K: k, Variant: core.VariantAdaptive4X}
	for _, fn := range opts {
		fn(&so)
	}
	return so
}

// statsOf converts core query statistics to the public Stats. Every
// exported field of core.QueryStats must be carried over — the statsmerge
// analyzer holds this function to that rule.
//
//climber:statsmerge
func statsOf(qs core.QueryStats) Stats {
	return Stats{
		GroupsConsidered:     qs.GroupsConsidered,
		TargetNodeSize:       qs.TargetNodeSize,
		TargetPathLen:        qs.TargetPathLen,
		PartitionsScanned:    qs.PartitionsScanned,
		RecordsScanned:       qs.RecordsScanned,
		DeltaScanned:         qs.DeltaScanned,
		BytesLoaded:          qs.BytesLoaded,
		PartitionCacheHits:   qs.CacheHits,
		PartitionCacheMisses: qs.CacheMisses,
		StepsPlanned:         qs.StepsPlanned,
		StepsExecuted:        qs.StepsExecuted,
		Partial:              qs.Partial,
		BudgetExhausted:      qs.BudgetExhausted,
	}
}

// resultsOf converts core results to the public Result slice.
func resultsOf(rs []series.Result) []Result {
	out := make([]Result, len(rs))
	for i, r := range rs {
		out[i] = Result{ID: r.ID, Dist: r.Dist}
	}
	return out
}

// Search returns the approximate k nearest neighbours of q, ascending by
// Euclidean distance. The default algorithm is Adaptive4X.
func (db *DB) Search(q []float64, k int, opts ...SearchOption) ([]Result, error) {
	res, _, err := db.SearchWithStatsContext(context.Background(), q, k, opts...)
	return res, err
}

// SearchContext is Search under a context: cancelling ctx stops the query's
// partition scans mid-plan (each scanning goroutine checks the context
// between cluster scans) and returns ctx.Err(). A query issued on behalf of
// a network client should pass the request context so a disconnect stops
// the disk and CPU work immediately.
func (db *DB) SearchContext(ctx context.Context, q []float64, k int, opts ...SearchOption) ([]Result, error) {
	res, _, err := db.SearchWithStatsContext(ctx, q, k, opts...)
	return res, err
}

// SearchWithStats is Search plus the query's effort statistics.
func (db *DB) SearchWithStats(q []float64, k int, opts ...SearchOption) ([]Result, Stats, error) {
	return db.SearchWithStatsContext(context.Background(), q, k, opts...)
}

// SearchWithStatsContext is SearchContext plus the query's effort
// statistics.
func (db *DB) SearchWithStatsContext(ctx context.Context, q []float64, k int, opts ...SearchOption) ([]Result, Stats, error) {
	if db.closed.Load() {
		return nil, Stats{}, ErrClosed
	}
	sr, err := db.ix.SearchContext(ctx, q, searchOptions(k, opts))
	if err != nil {
		return nil, Stats{}, err
	}
	return resultsOf(sr.Results), statsOf(sr.Stats), nil
}

// SearchExplainContext is SearchWithStatsContext plus the planner's
// navigation record (WithExplain is implied). The returned Explanation
// is never nil on success.
func (db *DB) SearchExplainContext(ctx context.Context, q []float64, k int, opts ...SearchOption) ([]Result, Stats, *Explanation, error) {
	if db.closed.Load() {
		return nil, Stats{}, nil, ErrClosed
	}
	so := searchOptions(k, opts)
	so.Explain = true
	sr, err := db.ix.SearchContext(ctx, q, so)
	if err != nil {
		return nil, Stats{}, nil, err
	}
	return resultsOf(sr.Results), statsOf(sr.Stats), sr.Explain, nil
}

// CacheStats reports the cumulative partition-cache counters of this DB,
// plus the cache's current resident and memory-mapped byte volumes.
func (db *DB) CacheStats() CacheStats {
	s := &db.cl.Stats
	resident, mapped := db.cl.CacheResidentBytes()
	return CacheStats{
		Hits:             s.PartitionCacheHits.Load(),
		Misses:           s.PartitionCacheMisses.Load(),
		Evictions:        s.PartitionCacheEvictions.Load(),
		BytesSaved:       s.PartitionCacheBytesSaved.Load(),
		PartitionsLoaded: s.PartitionsLoaded.Load(),
		ResidentBytes:    resident,
		MappedBytes:      mapped,
	}
}

// Append inserts new data series into the database. The assigned IDs
// (continuing the build sequence) are returned in input order. When Append
// returns, the series are durable — fsynced into the write-ahead log, so
// they survive a process kill — and immediately visible to every search;
// the background compactor lands them in partition files asynchronously
// (Flush forces it). Append is safe to call from any number of goroutines,
// concurrently with searches; writes are serialised internally.
func (db *DB) Append(data [][]float64) ([]int, error) {
	return db.AppendContext(context.Background(), data)
}

// AppendContext is Append under a context. Cancellation is honoured while
// the call waits its turn behind other writers; once the write-ahead-log
// fsync begins the write is acked regardless (a durability ack cannot be
// retracted).
func (db *DB) AppendContext(ctx context.Context, data [][]float64) ([]int, error) {
	if db.closed.Load() {
		return nil, ErrClosed
	}
	if db.ing == nil {
		return nil, ErrReadOnly
	}
	ids, err := db.ing.Append(ctx, data)
	if errors.Is(err, ingest.ErrClosed) {
		return nil, ErrClosed
	}
	return ids, err
}

// Flush synchronously compacts every acked-but-uncompacted write into its
// partition file, persists the manifest, and truncates the write-ahead log.
// Searches are unaffected either way — Flush only moves where records are
// served from.
func (db *DB) Flush() error {
	return db.FlushContext(context.Background())
}

// FlushContext is Flush under a context, honoured while waiting behind
// other writers.
func (db *DB) FlushContext(ctx context.Context) error {
	if db.closed.Load() {
		return ErrClosed
	}
	if db.ing == nil {
		return ErrReadOnly
	}
	err := db.ing.Flush(ctx)
	if errors.Is(err, ingest.ErrClosed) {
		return ErrClosed
	}
	if errors.Is(err, ingest.ErrRebuildInProgress) {
		return ErrReindexInProgress
	}
	return err
}

// IngestStats reports the cumulative counters of the streaming write path;
// all zero on a read-only DB.
func (db *DB) IngestStats() IngestStats {
	if db.ing == nil {
		return IngestStats{}
	}
	s := db.ing.Stats()
	return IngestStats{
		AppendCalls:     s.AppendCalls,
		AppendedSeries:  s.AppendedSeries,
		ReplayedSeries:  s.ReplayedSeries,
		WALBytes:        s.WALBytes,
		Compactions:     s.Compactions,
		CompactedSeries: s.CompactedSeries,
		DeltaRecords:    s.DeltaRecords,
		DeltaBytes:      s.DeltaBytes,
		CompactErrors:   s.CompactErrors,
	}
}

// SearchPrefix answers a query shorter than the indexed series length —
// the PAA-family flexibility the paper highlights over DFT/wavelet indexes.
// Candidates are ranked by Euclidean distance over the first len(q)
// readings of each record. Requires Segments <= len(q) <= series length.
func (db *DB) SearchPrefix(q []float64, k int, opts ...SearchOption) ([]Result, error) {
	res, _, err := db.SearchPrefixWithStatsContext(context.Background(), q, k, opts...)
	return res, err
}

// SearchPrefixContext is SearchPrefix under a context, with the same
// cancellation semantics as SearchContext.
func (db *DB) SearchPrefixContext(ctx context.Context, q []float64, k int, opts ...SearchOption) ([]Result, error) {
	res, _, err := db.SearchPrefixWithStatsContext(ctx, q, k, opts...)
	return res, err
}

// SearchPrefixWithStats is SearchPrefix plus the query's effort statistics
// — the same counters SearchWithStats reports, so prefix workloads are no
// longer blind to their partition-load and cache behaviour.
func (db *DB) SearchPrefixWithStats(q []float64, k int, opts ...SearchOption) ([]Result, Stats, error) {
	return db.SearchPrefixWithStatsContext(context.Background(), q, k, opts...)
}

// SearchPrefixWithStatsContext is SearchPrefixContext plus the query's
// effort statistics.
func (db *DB) SearchPrefixWithStatsContext(ctx context.Context, q []float64, k int, opts ...SearchOption) ([]Result, Stats, error) {
	if db.closed.Load() {
		return nil, Stats{}, ErrClosed
	}
	sr, err := db.ix.SearchPrefixContext(ctx, q, searchOptions(k, opts))
	if err != nil {
		return nil, Stats{}, err
	}
	return resultsOf(sr.Results), statsOf(sr.Stats), nil
}

// SearchPrefixExplainContext is SearchPrefixWithStatsContext plus the
// planner's navigation record (WithExplain is implied). The returned
// Explanation is never nil on success.
func (db *DB) SearchPrefixExplainContext(ctx context.Context, q []float64, k int, opts ...SearchOption) ([]Result, Stats, *Explanation, error) {
	if db.closed.Load() {
		return nil, Stats{}, nil, ErrClosed
	}
	so := searchOptions(k, opts)
	so.Explain = true
	sr, err := db.ix.SearchPrefixContext(ctx, q, so)
	if err != nil {
		return nil, Stats{}, nil, err
	}
	return resultsOf(sr.Results), statsOf(sr.Stats), sr.Explain, nil
}

// SearchUpdate is one progressive answer snapshot delivered during
// SearchProgressiveContext: the best top-k assembled after a plan step.
// Snapshots are monotonically non-worsening — each one's result set is at
// least as large, and its k-th distance at least as small, as the previous
// one's.
type SearchUpdate struct {
	// Results are the current approximate nearest neighbours, ascending by
	// Euclidean distance.
	Results []Result
	// Step counts the plan steps executed so far; StepsPlanned is the
	// plan's total, so Step/StepsPlanned is the coverage fraction.
	Step, StepsPlanned int
	// Final marks the last snapshot: its Results are exactly the query's
	// returned answer.
	Final bool
	// Stats is the effort accumulated so far.
	Stats Stats
}

// SearchProgressive answers a kNN query progressively: fn receives a
// monotonically improving SearchUpdate after every executed plan step and
// a final one when the answer is complete. Returning false from fn stops
// the query early — the returned results are the best answer so far,
// marked partial. Combine with WithTimeBudget / WithMaxPartitions for
// budget-bounded anytime queries (the ProS serving mode: first answers
// after one partition, refined step by step).
//
// fn runs synchronously on the query's goroutine and must not block for
// long. Progressive execution scans partitions sequentially in plan-rank
// order, trading the run-to-completion path's partition parallelism for
// step-boundary control.
func (db *DB) SearchProgressive(q []float64, k int, fn func(SearchUpdate) bool, opts ...SearchOption) ([]Result, Stats, error) {
	return db.SearchProgressiveContext(context.Background(), q, k, fn, opts...)
}

// SearchProgressiveContext is SearchProgressive under a context, with the
// same cancellation semantics as SearchContext.
func (db *DB) SearchProgressiveContext(ctx context.Context, q []float64, k int, fn func(SearchUpdate) bool, opts ...SearchOption) ([]Result, Stats, error) {
	if db.closed.Load() {
		return nil, Stats{}, ErrClosed
	}
	var sink func(core.Snapshot) bool
	if fn != nil {
		sink = func(s core.Snapshot) bool {
			return fn(SearchUpdate{
				Results:      resultsOf(s.Results),
				Step:         s.Step,
				StepsPlanned: s.StepsPlanned,
				Final:        s.Final,
				Stats:        statsOf(s.Stats),
			})
		}
	}
	sr, err := db.ix.SearchProgressive(ctx, q, searchOptions(k, opts), sink)
	if err != nil {
		return nil, Stats{}, err
	}
	return resultsOf(sr.Results), statsOf(sr.Stats), nil
}

// SearchBatch answers many queries concurrently with the default Adaptive4X
// algorithm; results align positionally with the queries.
func (db *DB) SearchBatch(queries [][]float64, k int, opts ...SearchOption) ([][]Result, error) {
	return db.SearchBatchContext(context.Background(), queries, k, opts...)
}

// SearchBatchContext is SearchBatch under a context. Cancelling ctx aborts
// the whole batch: queued queries never start and in-flight queries stop on
// their partition-scan path; the returned error wraps ctx.Err().
func (db *DB) SearchBatchContext(ctx context.Context, queries [][]float64, k int, opts ...SearchOption) ([][]Result, error) {
	return db.SearchBatchContextWorkers(ctx, queries, k, 0, opts...)
}

// SearchBatchContextWorkers is SearchBatchContext with an explicit worker
// count; workers <= 0 uses GOMAXPROCS. Serving layers use it to keep a
// batch's internal parallelism within their admission budget instead of
// letting every batch fan out to full machine width.
func (db *DB) SearchBatchContextWorkers(ctx context.Context, queries [][]float64, k, workers int, opts ...SearchOption) ([][]Result, error) {
	out, _, err := db.SearchBatchWithStatsContextWorkers(ctx, queries, k, workers, opts...)
	return out, err
}

// SearchBatchWithStatsContextWorkers is SearchBatchContextWorkers plus each
// query's effort statistics, positionally aligned with the queries. Serving
// layers use the per-query stats to mark budget-truncated batch answers
// partial. Note that a WithTimeBudget deadline is fixed once for the whole
// batch, bounding the batch end to end rather than each query separately.
func (db *DB) SearchBatchWithStatsContextWorkers(ctx context.Context, queries [][]float64, k, workers int, opts ...SearchOption) ([][]Result, []Stats, error) {
	if db.closed.Load() {
		return nil, nil, ErrClosed
	}
	batch, err := db.ix.SearchBatchContext(ctx, queries, searchOptions(k, opts), workers)
	if err != nil {
		return nil, nil, err
	}
	out := make([][]Result, len(batch))
	stats := make([]Stats, len(batch))
	for i, sr := range batch {
		out[i] = resultsOf(sr.Results)
		stats[i] = statsOf(sr.Stats)
	}
	return out, stats, nil
}

// Close releases the database's resources: the ingestion pipeline stops
// (running one final compaction so nothing is left in the WAL), the shared
// partition cache is purged, and further queries, appends and batch calls
// return ErrClosed. Close is idempotent and safe to call concurrently with
// running queries — in-flight queries finish normally on uncached file
// reads; they are not interrupted (cancel their contexts for that). The
// on-disk database is untouched and can be reopened with Open.
func (db *DB) Close() error {
	if db.closed.Swap(true) {
		return nil
	}
	var err error
	if db.ing != nil {
		err = db.ing.Close()
	}
	if cerr := db.cl.Close(); err == nil {
		err = cerr
	}
	return err
}

// ShardDirs returns the conventional shard directory layout under base:
// base/shard-0 .. base/shard-n-1 — the layout climber-build -shards writes
// and the sharded walkthroughs assume.
func ShardDirs(base string, n int) []string {
	dirs := make([]string, n)
	for i := range dirs {
		dirs[i] = filepath.Join(base, fmt.Sprintf("shard-%d", i))
	}
	return dirs
}

// OpenShards opens every directory as an independent DB, applying the same
// options to each — the multi-open companion of a sharded deployment,
// where every climber-serve process owns one of the directories behind a
// cmd/climber-router. On any failure the already-opened DBs are closed and
// the returned error names the directory that refused.
func OpenShards(dirs []string, opts ...Option) ([]*DB, error) {
	dbs := make([]*DB, 0, len(dirs))
	for _, dir := range dirs {
		db, err := Open(dir, opts...)
		if err != nil {
			CloseShards(dbs)
			return nil, fmt.Errorf("climber: open shard %s: %w", dir, err)
		}
		dbs = append(dbs, db)
	}
	return dbs, nil
}

// CloseShards closes every non-nil DB in dbs, returning the first error.
// Close is idempotent, so CloseShards may run after individual Closes.
func CloseShards(dbs []*DB) error {
	var err error
	for _, db := range dbs {
		if db == nil {
			continue
		}
		if cerr := db.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Info summarises the database's shape.
type Info struct {
	SeriesLen     int
	NumGroups     int
	NumPartitions int
	SkeletonBytes int
	NumRecords    int
	// Generation is the active index generation: 0 until the first
	// successful Reindex, then incremented by each one.
	Generation int
}

// Info reports the database's structural summary. NumRecords counts every
// acked record exactly once: those in partition files plus those still in
// the in-memory delta awaiting compaction (derived from the acked-write
// counters, so a compaction in flight cannot skew it).
func (db *DB) Info() Info {
	records := db.ix.PersistedRecords()
	if db.ing != nil {
		records = db.ing.TotalRecords()
	}
	skel := db.ix.Skeleton()
	return Info{
		SeriesLen:     skel.SeriesLen,
		NumGroups:     skel.NumGroups(),
		NumPartitions: skel.NumPartitions,
		SkeletonBytes: skel.EncodedSize(),
		NumRecords:    records,
		Generation:    int(db.genNum.Load()),
	}
}

// Reindex rebuilds the index online: a fresh sample is drawn from the live
// dataset, a new skeleton (new pivots, new groups, new tries) is built from
// it, every persisted record is re-routed into new partition files under a
// versioned sibling directory (gen-NNNN), and the database atomically swaps
// to the new generation by renaming its fsynced MANIFEST pointer. This is
// the remedy for capacity drift: heavy append traffic grows partitions past
// the capacity the original sample's skeleton planned for (the paper's
// Section V soft-constraint), and a reindex restores the built-fresh layout
// without taking the database offline.
//
// Zero downtime, concretely:
//
//   - Searches run throughout. A query pins the generation current at its
//     start and reads it to completion; the moment the swap commits, new
//     queries see the new generation. The swapped-out generation's files are
//     deleted only after its last in-flight reader finishes.
//   - Appends run throughout. Writes acked during the rebuild accumulate in
//     the WAL and the old generation's delta; at commit, they are re-routed
//     through the new skeleton into the new generation's delta — every
//     acked-before-commit record is visible after, and remains durable.
//   - Compactions pause during the rebuild (Flush returns
//     ErrReindexInProgress) and resume against the new generation after.
//
// Crash safety: the MANIFEST rename is the single commit point. A kill at
// any step before it reopens the old generation (the half-built gen-NNNN
// directory is swept on the next Open); a kill at or after it reopens the
// new one; WAL replay re-routes surviving entries against whichever
// skeleton the manifest names. The kill-anywhere crash matrix in the tests
// enumerates every fsync/rename step of the protocol and verifies exactly
// this.
//
// Reindex runs synchronously (minutes on a large database — callers wanting
// a background rebuild should run it on their own goroutine) and returns
// ErrReindexInProgress if another reindex is already running, ErrReadOnly on
// a read-only DB, and ctx's error if cancelled mid-rebuild (the database is
// left on the old generation, unharmed).
func (db *DB) Reindex(ctx context.Context) error {
	if db.closed.Load() {
		return ErrClosed
	}
	if db.ing == nil {
		return ErrReadOnly
	}
	if !db.reindexing.CompareAndSwap(false, true) {
		return ErrReindexInProgress
	}
	defer db.reindexing.Store(false)

	// Quiesce the write-side baseline: one final compaction drains the delta
	// and WAL, so the partition files hold exactly the records the rebuild
	// will re-route, then compactions pause. Appends stay live.
	if err := db.ing.BeginRebuild(ctx); err != nil {
		switch {
		case errors.Is(err, ingest.ErrClosed):
			return ErrClosed
		case errors.Is(err, ingest.ErrRebuildInProgress):
			return ErrReindexInProgress
		}
		return err
	}

	next := int(db.genNum.Load()) + 1
	genRoot := core.GenDir(db.dir, next)
	newGen, err := db.ix.RebuildGeneration(ctx, genRoot, db.nodes, "climber")
	if err != nil {
		db.ing.AbortRebuild()
		os.RemoveAll(genRoot)
		return err
	}

	// Commit: under the write semaphore, re-route the records appended
	// during the rebuild into the new generation's delta, point the MANIFEST
	// at the new generation (the durable commit), and swap it in. A failure
	// before the pointer rename resumes the old generation untouched.
	oldRoot := db.activeRoot()
	err = db.ing.CommitRebuild(newGen.Skel.RouteNewRecord, func(nd *ingest.MemDelta) error {
		newGen.SetDelta(nd)
		if err := core.WriteManifestPointer(db.dir, next); err != nil {
			return err
		}
		old := db.ix.SwapGeneration(newGen)
		db.genNum.Store(int64(next))
		db.cleanupWG.Add(1)
		go db.cleanupGeneration(old, oldRoot)
		return nil
	})
	if err != nil {
		os.RemoveAll(genRoot)
		if errors.Is(err, ingest.ErrClosed) {
			return ErrClosed
		}
		return err
	}
	return nil
}

// cleanupGeneration deletes a swapped-out generation's files once its last
// in-flight reader drains, and drops its partitions from the shared cache.
// Only the retired generation's own files are touched — a concurrent later
// reindex may already be building the next generation alongside.
func (db *DB) cleanupGeneration(old *core.Generation, oldRoot string) {
	defer db.cleanupWG.Done()
	<-old.Drained()
	sep := string(filepath.Separator)
	if oldRoot == db.dir {
		// Generation 0 lives interleaved with the database root: its
		// skeleton at dir/index.clms and its partition and block files under
		// dir/cluster/.
		db.cl.InvalidatePartitionPrefix(filepath.Join(db.dir, "cluster") + sep)
		os.Remove(indexPath(db.dir))
		os.RemoveAll(filepath.Join(db.dir, "cluster"))
		return
	}
	db.cl.InvalidatePartitionPrefix(oldRoot + sep)
	os.RemoveAll(oldRoot)
}

// Backup writes a self-contained snapshot of the database into destDir,
// which must not yet exist (or be an empty directory). The immutable-
// generation layout makes this nearly free: after a synchronous flush (so
// the partition files hold every acked record and the WAL is empty), the
// current generation's partition files are hard-linked into destDir —
// falling back to copies across filesystems — and the skeleton+manifest is
// re-encoded against the backup's own layout. The result is a directory
// climber.Open accepts directly; climber-build -restore copies it back into
// a fresh live directory.
//
// Backup runs under the write barrier: appends wait out the copy (partition
// files must not be rewritten mid-link), searches are unaffected. During a
// reindex, Backup returns ErrReindexInProgress. On a read-only DB the
// barrier is skipped — nothing mutates — and the WAL, if one was left by a
// writer, is not part of the snapshot.
func (db *DB) Backup(ctx context.Context, destDir string) error {
	if db.closed.Load() {
		return ErrClosed
	}
	if db.ing == nil {
		return db.backupTo(destDir)
	}
	err := db.ing.Barrier(ctx, func() error { return db.backupTo(destDir) })
	switch {
	case errors.Is(err, ingest.ErrClosed):
		return ErrClosed
	case errors.Is(err, ingest.ErrRebuildInProgress):
		return ErrReindexInProgress
	}
	return err
}

// backupTo assembles the snapshot. Caller holds the write barrier (or the
// DB is read-only), so the generation, its partition files, and its counts
// are all stable.
func (db *DB) backupTo(destDir string) error {
	if ents, err := os.ReadDir(destDir); err == nil && len(ents) > 0 {
		return fmt.Errorf("climber: backup destination %s is not empty", destDir)
	} else if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("climber: backup destination: %w", err)
	}
	if err := os.MkdirAll(destDir, 0o755); err != nil {
		return fmt.Errorf("climber: backup destination: %w", err)
	}
	g := db.ix.AcquireGeneration()
	defer g.Release()

	destPaths := make([]string, len(g.Parts.Paths))
	madeDirs := map[string]bool{}
	for pid, src := range g.Parts.Paths {
		// Preserve the node-directory layout so the backup mirrors a
		// build-time database directory.
		node := filepath.Base(filepath.Dir(src))
		nodeDir := filepath.Join(destDir, node)
		if !madeDirs[nodeDir] {
			if err := os.MkdirAll(nodeDir, 0o755); err != nil {
				return fmt.Errorf("climber: backup mkdir: %w", err)
			}
			madeDirs[nodeDir] = true
		}
		dst := filepath.Join(nodeDir, filepath.Base(src))
		if err := linkOrCopy(src, dst); err != nil {
			return fmt.Errorf("climber: backup partition %d: %w", pid, err)
		}
		destPaths[pid] = dst
	}
	parts := &cluster.PartitionSet{
		SeriesLen: g.Parts.SeriesLen,
		Paths:     destPaths,
		Counts:    append([]int(nil), g.Parts.Counts...),
	}
	// SaveSnapshot relativises the partition paths against destDir, so the
	// backup opens wherever it is later moved or restored to.
	if err := core.SaveSnapshot(g.Skel, parts, core.IndexPathIn(destDir)); err != nil {
		return err
	}
	for d := range madeDirs {
		if err := fsyncPath(d); err != nil {
			return err
		}
	}
	return fsyncPath(destDir)
}

// linkOrCopy hard-links src to dst, degrading to a full copy when the link
// fails (cross-device backups). Partition files are immutable-once-written
// (rewrites replace the file via rename, never modify it in place), so a
// hard link shares the bytes safely: a later compaction unlinks the live
// name and the backup keeps the old inode.
func linkOrCopy(src, dst string) error {
	if err := os.Link(src, dst); err == nil {
		return nil
	}
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	if err := out.Sync(); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// fsyncPath fsyncs a file or directory by path.
func fsyncPath(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		return fmt.Errorf("climber: sync %s: %w", path, err)
	}
	return nil
}

// Dir returns the database's directory.
func (db *DB) Dir() string { return db.dir }

// Index exposes the underlying core index for advanced use (experiment
// harnesses, inspection tools).
func (db *DB) Index() *core.Index { return db.ix }
