package climber

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestReindexSoak hammers one database with concurrent appends, searches,
// flushes, and repeated online reindexes (run it under -race). The
// invariants:
//
//   - no operation may fail, except Flush observing ErrReindexInProgress
//     while a rebuild holds the compaction baseline;
//   - a search issued after an append was acked AND after the workload
//     quiesces must find the record — an acked write committed before a
//     generation swap is visible after it, reindexes lose nothing;
//   - the database stays consistent through it all: the final record count
//     equals builds + acked appends.
//
// Mid-workload searches only assert absence of errors: a search overlapping
// a compaction can transiently miss a record that is mid-move from the
// delta into a partition (a pre-existing, documented property of the
// ingest path), so per-record visibility is asserted only at the quiesced
// end state.
func TestReindexSoak(t *testing.T) {
	dir := t.TempDir()
	base := smallData(800)
	// Aggressive compaction so real compactions race the reindexes too.
	db, err := Build(dir, base, append(append([]Option{}, smallOpts()...),
		WithCompactionRecords(32), WithCompactionAge(20*time.Millisecond))...)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const (
		appendBatches = 30
		batchSize     = 5
		reindexes     = 3
	)
	pool := smallData(800 + appendBatches*batchSize)[800:]

	var (
		wg      sync.WaitGroup
		stop    = make(chan struct{})
		ackedMu sync.Mutex
		acked   = map[int][]float64{} // id -> series, filled as appends ack
		fails   atomic.Int64
	)
	fail := func(format string, args ...any) {
		fails.Add(1)
		t.Errorf(format, args...)
	}

	// Appender: acks batches one by one, publishing each under the lock so
	// searchers only ever read durable records.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for b := 0; b < appendBatches; b++ {
			batch := pool[b*batchSize : (b+1)*batchSize]
			ids, err := db.Append(batch)
			if err != nil {
				fail("append batch %d: %v", b, err)
				return
			}
			ackedMu.Lock()
			for i, id := range ids {
				acked[id] = batch[i]
			}
			ackedMu.Unlock()
		}
	}()

	// Searchers: query already-acked records and base records; errors are
	// failures, transient misses are not (see the doc comment).
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := base[(w*397+i*31)%len(base)]
				ackedMu.Lock()
				for id, s := range acked { // first map entry: arbitrary acked record
					_, q = id, s
					break
				}
				ackedMu.Unlock()
				if _, err := db.Search(q, 5); err != nil {
					fail("search: %v", err)
					return
				}
				i++
			}
		}(w)
	}

	// Flusher: forced compactions interleave the reindexes; the only
	// tolerated error is the rebuild holding the baseline.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
			}
			if err := db.Flush(); err != nil && !errors.Is(err, ErrReindexInProgress) {
				fail("flush: %v", err)
				return
			}
		}
	}()

	// Reindexer: the swaps under test, back to back on the main goroutine's
	// schedule.
	for r := 0; r < reindexes && fails.Load() == 0; r++ {
		if err := db.Reindex(context.Background()); err != nil {
			t.Fatalf("reindex %d: %v", r, err)
		}
	}
	close(stop)
	wg.Wait()
	if fails.Load() > 0 {
		t.FailNow()
	}

	// Quiesce and verify the end state: every acked record visible, count
	// exact, one more reindex over the final record set still clean.
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	ackedMu.Lock()
	defer ackedMu.Unlock()
	want := 800 + len(acked)
	if n := db.Info().NumRecords; n != want {
		t.Fatalf("NumRecords = %d after soak, want %d", n, want)
	}
	for id, s := range acked {
		res, err := db.Search(s, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) == 0 || res[0].ID != id || res[0].Dist > 1e-4 {
			t.Fatalf("acked record %d lost across reindexes: %+v", id, res)
		}
	}
	if err := db.Reindex(context.Background()); err != nil {
		t.Fatalf("final reindex: %v", err)
	}
	if n := db.Info().NumRecords; n != want {
		t.Fatalf("NumRecords = %d after final reindex, want %d", n, want)
	}
}
