package climber

// abandonForTest simulates a process kill for crash-recovery tests: the
// ingestion pipeline stops and the WAL closes with its contents intact (no
// final compaction), releasing the single-writer file lock exactly as a
// real process death would. The DB must not be used afterwards.
func (db *DB) abandonForTest() { db.ing.Abandon() }

// waitCleanupForTest joins the deferred generation-cleanup goroutines a
// reindex spawns, so tests can assert the retired generation's files are
// gone without racing the drain.
func (db *DB) waitCleanupForTest() { db.cleanupWG.Wait() }
