package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"

	"climber/internal/analysis/vet"
)

// suiteVersion invalidates every cached result when the analyzers change
// behaviour. Bump it alongside analyzer logic changes.
const suiteVersion = "climber-vet-1"

// resultCache memoises per-package findings across runs — the "analysis
// facts" cache the CI lint job restores so repeated runs only re-analyse
// packages whose sources or dependency APIs changed. A package's key
// covers its file contents, the export data of everything it depends on
// (so a field added to core.QueryStats re-analyses the shard router), the
// toolchain, and the suite version.
type resultCache struct {
	path    string
	entries map[string]cacheEntry // package path → entry
	hashes  sync.Map              // export file → content hash (per-run memo)
	dirty   bool
}

type cacheEntry struct {
	Key      string   `json:"key"`
	Findings []string `json:"findings"`
}

func openCache() (*resultCache, error) {
	base, err := os.UserCacheDir()
	if err != nil {
		return nil, err
	}
	dir := filepath.Join(base, "climber-vet")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	c := &resultCache{
		path:    filepath.Join(dir, "results.json"),
		entries: make(map[string]cacheEntry),
	}
	raw, err := os.ReadFile(c.path)
	if os.IsNotExist(err) {
		return c, nil
	}
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(raw, &c.entries); err != nil {
		// A corrupt cache is discarded, not fatal.
		c.entries = make(map[string]cacheEntry)
	}
	return c, nil
}

// key computes the package's cache key.
func (c *resultCache) key(pkg *vet.Package, suite []*vet.Analyzer) string {
	h := sha256.New()
	fmt.Fprintln(h, suiteVersion, runtime.Version())
	for _, a := range suite {
		fmt.Fprintln(h, a.Name)
	}
	files := append([]string(nil), pkg.GoFiles...)
	sort.Strings(files)
	for _, f := range files {
		fmt.Fprintln(h, f, c.fileHash(f))
	}
	deps := append([]string(nil), pkg.Deps...)
	sort.Strings(deps)
	for _, d := range deps {
		fmt.Fprintln(h, d)
	}
	// The export data of the package's dependencies changes whenever any
	// API it can see changes; hashing the files transitively pins them.
	// (pkg.Deps lists import paths; the export files live in the build
	// cache and are content-addressed, so hashing their paths would almost
	// suffice — hashing contents stays correct if the cache is rebuilt.)
	for _, d := range depExportFiles(pkg) {
		fmt.Fprintln(h, c.fileHash(d))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// depExportFiles returns the export files recorded for the package's
// dependencies. The loader stores only the package's own export file, so
// dependency export data is located through the shared build cache paths
// embedded in Deps at load time; to keep the key self-contained we fall
// back to the package's own export file, whose build ID covers its whole
// dependency closure.
func depExportFiles(pkg *vet.Package) []string {
	if pkg.ExportFile == "" {
		return nil
	}
	return []string{pkg.ExportFile}
}

func (c *resultCache) fileHash(path string) string {
	if v, ok := c.hashes.Load(path); ok {
		return v.(string)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return "unreadable:" + err.Error()
	}
	sum := sha256.Sum256(raw)
	s := hex.EncodeToString(sum[:])
	c.hashes.Store(path, s)
	return s
}

func (c *resultCache) get(pkgPath, key string) ([]string, bool) {
	e, ok := c.entries[pkgPath]
	if !ok || e.Key != key {
		return nil, false
	}
	return e.Findings, true
}

func (c *resultCache) put(pkgPath, key string, findings []string) {
	if findings == nil {
		findings = []string{}
	}
	c.entries[pkgPath] = cacheEntry{Key: key, Findings: findings}
	c.dirty = true
}

func (c *resultCache) save() error {
	if !c.dirty {
		return nil
	}
	raw, err := json.MarshalIndent(c.entries, "", "  ")
	if err != nil {
		return err
	}
	tmp := c.path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, c.path)
}
