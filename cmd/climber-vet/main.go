// Command climber-vet is the repository's invariant multichecker: it runs
// every analyzer under internal/analysis — ctxflow, lockio, syncack,
// statsmerge, ctxleak, tracespan, doccomment, genswap, mmapsafe — over the
// given package patterns, plus
// the repository-level markdown link gate, and exits non-zero on any
// finding. CI runs it in the lint job; locally:
//
//	go run ./cmd/climber-vet ./...
//
// Each analyzer encodes an invariant a past PR broke and hand-fixed; see
// the "Invariants" section of ARCHITECTURE.md for the catalogue. Findings
// print as file:line:col: analyzer: message. A deliberate exception is
// annotated in the source with //lint:ignore <analyzer> <reason>.
//
// Per-package results are cached under os.UserCacheDir()/climber-vet keyed
// by the package's file contents, its dependencies' export data, the
// toolchain, and the suite version — repeated runs re-analyse only what
// changed. -nocache disables the cache, -nomd skips the markdown gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"climber/internal/analysis/ctxflow"
	"climber/internal/analysis/ctxleak"
	"climber/internal/analysis/docs"
	"climber/internal/analysis/genswap"
	"climber/internal/analysis/lockio"
	"climber/internal/analysis/mmapsafe"
	"climber/internal/analysis/statsmerge"
	"climber/internal/analysis/syncack"
	"climber/internal/analysis/tracespan"
	"climber/internal/analysis/vet"
)

func analyzers() []*vet.Analyzer {
	return []*vet.Analyzer{
		ctxflow.Analyzer,
		lockio.Analyzer,
		syncack.Analyzer,
		statsmerge.Analyzer,
		ctxleak.Analyzer,
		tracespan.Analyzer,
		docs.Analyzer,
		genswap.Analyzer,
		mmapsafe.Analyzer,
	}
}

func main() {
	noCache := flag.Bool("nocache", false, "disable the per-package result cache")
	noMd := flag.Bool("nomd", false, "skip the repository markdown link gate")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: climber-vet [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	findings, err := runSuite(patterns, *noCache, *noMd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "climber-vet:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "climber-vet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func runSuite(patterns []string, noCache, noMd bool) ([]string, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	pkgs, err := vet.Load(cwd, patterns)
	if err != nil {
		return nil, err
	}

	var cache *resultCache
	if !noCache {
		cache, err = openCache()
		if err != nil {
			// A broken cache must never block the lint: run uncached.
			fmt.Fprintln(os.Stderr, "climber-vet: cache disabled:", err)
		}
	}

	suite := analyzers()
	var findings []string
	for _, pkg := range pkgs {
		key := ""
		if cache != nil {
			key = cache.key(pkg, suite)
			if cached, ok := cache.get(pkg.Path, key); ok {
				findings = append(findings, cached...)
				continue
			}
		}
		diags, err := vet.RunAnalyzers([]*vet.Package{pkg}, suite)
		if err != nil {
			return nil, err
		}
		lines := make([]string, 0, len(diags))
		for _, d := range diags {
			lines = append(lines, d.String())
		}
		findings = append(findings, lines...)
		if cache != nil {
			cache.put(pkg.Path, key, lines)
		}
	}
	if cache != nil {
		if err := cache.save(); err != nil {
			fmt.Fprintln(os.Stderr, "climber-vet: saving cache:", err)
		}
	}

	if !noMd {
		root, err := moduleRoot(cwd)
		if err != nil {
			return nil, err
		}
		md, err := docs.CheckMarkdownLinks(root)
		if err != nil {
			return nil, err
		}
		for _, f := range md {
			findings = append(findings, f+" (mdlinks)")
		}
	}
	return findings, nil
}

// moduleRoot resolves the main module's directory, the base for the
// markdown gate and the cache key.
func moduleRoot(dir string) (string, error) {
	cmd := exec.Command("go", "list", "-m", "-f", "{{.Dir}}")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("resolving module root: %w", err)
	}
	return strings.TrimSpace(string(out)), nil
}
