// Command climber-serve exposes a database built by climber-build as a
// long-lived concurrent HTTP JSON query service.
//
// Usage:
//
//	climber-serve -dir ./db -addr :8080 -cache-bytes 268435456
//
// Endpoints (see internal/server for the request/response shapes):
//
//	POST /search        one kNN query
//	POST /search/batch  many queries in one request
//	POST /search/prefix one query shorter than the indexed length
//	POST /append        ingest new series (durable + immediately searchable)
//	POST /flush         force compaction of acked writes into partitions
//	POST /reindex       rebuild the index online (new sample, pivots, layout)
//	POST /backup        snapshot the database under -backup-dir
//	GET  /info          database shape
//	GET  /stats         server + cache + ingestion counters (JSON)
//	GET  /healthz       liveness probe
//	GET  /metrics       Prometheus text exposition
//	GET  /debug/slow    slow-query log (ring buffer of traced slow/sampled queries)
//
// Observability: any search request may carry "explain": true to get the
// planner's ranked step list and the query's span tree inline in the
// response. Requests slower than -slow-threshold (and a -slow-sample
// fraction of all requests) are recorded in /debug/slow and logged.
// -debug-addr starts a second listener carrying net/http/pprof and the
// same /debug/slow, kept off the service port's admission control.
//
// The service bounds in-flight queries and writes with an admission
// semaphore (-max-inflight): excess requests queue up to -queue-timeout and
// are then answered 429. A client that disconnects mid-query cancels the
// query's partition scans. Appends are fsynced into the database's
// write-ahead log before they are acked and a background compactor folds
// them into partition files (-compact-records / -compact-age tune the
// thresholds). SIGINT/SIGTERM drain in-flight requests, then Close runs a
// final compaction before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"climber"
	"climber/internal/obs"
	"climber/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("climber-serve: ")

	var (
		dir          = flag.String("dir", "", "database directory (required)")
		addr         = flag.String("addr", ":8080", "listen address")
		cacheBytes   = flag.Int64("cache-bytes", 256<<20, "partition cache budget in bytes (0 disables the cache)")
		mmap         = flag.Bool("mmap", false, "memory-map cached partition files instead of decoding them onto the heap (requires -cache-bytes)")
		maxInflight  = flag.Int("max-inflight", 0, "admission limit on concurrently executing queries (0 = 4 x GOMAXPROCS)")
		queueTimeout = flag.Duration("queue-timeout", 2*time.Second, "how long an over-limit request may wait for a slot before 429")
		maxK         = flag.Int("max-k", 10000, "largest accepted per-query answer size k")
		maxBatch     = flag.Int("max-batch", 256, "largest accepted batch query count")
		maxAppend    = flag.Int("max-append", 1024, "largest accepted append series count")
		compactRecs  = flag.Int("compact-records", 4096, "delta records that trigger a background compaction")
		compactAge   = flag.Duration("compact-age", 5*time.Second, "oldest uncompacted record age that forces a compaction")
		bodyTimeout  = flag.Duration("body-timeout", 15*time.Second, "deadline for reading one request body")
		drainTimeout = flag.Duration("drain-timeout", 15*time.Second, "graceful-shutdown deadline for in-flight requests")
		debugAddr    = flag.String("debug-addr", "", "optional second listener for net/http/pprof and /debug/slow (e.g. localhost:6060)")
		slowThresh   = flag.Duration("slow-threshold", 500*time.Millisecond, "requests at least this slow enter the slow-query log (negative disables)")
		slowSample   = flag.Float64("slow-sample", 0, "probability in [0,1] that an arbitrary query is traced and slow-logged")
		slowLogSize  = flag.Int("slow-log-size", 128, "slow-query ring buffer capacity")
		backupRoot   = flag.String("backup-dir", "", "directory for POST /backup snapshots (empty disables the endpoint)")
	)
	flag.Parse()
	if *dir == "" {
		flag.Usage()
		os.Exit(2)
	}

	db, err := climber.Open(*dir,
		climber.WithPartitionCacheBytes(*cacheBytes),
		climber.WithMmap(*mmap),
		climber.WithCompactionRecords(*compactRecs),
		climber.WithCompactionAge(*compactAge))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	info := db.Info()
	log.Printf("opened %s: %d records, series length %d, %d groups, %d partitions",
		*dir, info.NumRecords, info.SeriesLen, info.NumGroups, info.NumPartitions)
	if ing := db.IngestStats(); ing.ReplayedSeries > 0 {
		log.Printf("replayed %d acked series from the write-ahead log", ing.ReplayedSeries)
	}

	srv := server.New(db, server.Config{
		MaxInFlight:     *maxInflight,
		QueueTimeout:    *queueTimeout,
		MaxK:            *maxK,
		MaxBatch:        *maxBatch,
		MaxAppend:       *maxAppend,
		BodyReadTimeout: *bodyTimeout,
		SlowLogSize:     *slowLogSize,
		SlowThreshold:   *slowThresh,
		SlowSample:      *slowSample,
		BackupRoot:      *backupRoot,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	if *debugAddr != "" {
		// The diagnostics listener is separate so pprof and the slow-query
		// log can stay off the service port (and off its admission control).
		go func() {
			log.Printf("debug listener (pprof, /debug/slow) on %s", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, obs.DebugMux(srv.SlowLog())); err != nil {
				log.Printf("debug listener: %v", err)
			}
		}()
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("serving on %s", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case s := <-sig:
		log.Printf("received %v, draining in-flight requests", s)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}
	if err := db.Close(); err != nil {
		log.Printf("close: %v", err)
	}
}
