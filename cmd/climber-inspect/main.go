// Command climber-inspect prints the structure of a built CLIMBER database:
// the group list with centroids (the paper's Figure 5 left side), trie
// shapes, and partition occupancy.
//
// Usage:
//
//	climber-inspect -dir ./db [-stats] [-groups] [-partitions]
//
// -stats prints the skeleton's shape statistics: trie node counts, the
// leaf-depth histogram, and the distribution of actual partition sizes —
// the numbers that explain a database's query behaviour (deep tries mean
// long signature prefixes; a skewed partition distribution means uneven
// scan costs).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"climber"
	"climber/internal/storage"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("climber-inspect: ")

	var (
		dir        = flag.String("dir", "", "database directory (required)")
		stats      = flag.Bool("stats", false, "print skeleton shape statistics: node counts, depth histogram, partition size distribution")
		groups     = flag.Bool("groups", false, "list every group with its centroid and trie shape")
		partitions = flag.Bool("partitions", false, "list per-partition record counts")
		verify     = flag.Bool("verify", false, "checksum every partition file")
	)
	flag.Parse()
	if *dir == "" {
		flag.Usage()
		os.Exit(2)
	}

	db, err := climber.Open(*dir, climber.WithReadOnly())
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	info := db.Info()
	skel := db.Index().Skeleton()
	cfg := skel.Cfg

	fmt.Printf("CLIMBER database %s\n", *dir)
	fmt.Printf("  series length:  %d\n", info.SeriesLen)
	fmt.Printf("  records:        %d\n", info.NumRecords)
	fmt.Printf("  groups:         %d (incl. fall-back G0)\n", info.NumGroups)
	fmt.Printf("  partitions:     %d\n", info.NumPartitions)
	fmt.Printf("  skeleton size:  %d bytes\n", info.SkeletonBytes)
	fmt.Printf("  config:         w=%d r=%d m=%d capacity=%d alpha=%.3f decay=%v seed=%d\n",
		cfg.Segments, cfg.NumPivots, cfg.PrefixLen, cfg.Capacity, cfg.SampleRate, cfg.Decay, cfg.Seed)

	desc := skel.Describe()
	fmt.Printf("  trie forest:    %d nodes, %d leaves, max depth %d\n",
		desc.TrieNodes, desc.TrieLeaves, desc.MaxDepth)
	fmt.Printf("  leaf depths:    ")
	for depth, cnt := range desc.DepthHistogram {
		if cnt > 0 {
			fmt.Printf("d%d:%d ", depth, cnt)
		}
	}
	fmt.Println()
	fmt.Printf("  partition est.: min=%d max=%d (capacity %d)\n",
		desc.SmallestPartitionEst, desc.LargestPartitionEst, cfg.Capacity)

	if *stats {
		printStats(db)
	}

	if *groups {
		fmt.Println("groups:")
		for gid := 0; gid < skel.NumGroups(); gid++ {
			g := skel.Groups[gid]
			nodes := g.Trie.Nodes()
			leaves := g.Trie.Leaves()
			centroid := "<*>"
			if g.Centroid != nil {
				centroid = g.Centroid.String()
			}
			fmt.Printf("  G%-4d centroid=%-40s est=%-8d trie: %d nodes, %d leaves, partitions=%v default=%d\n",
				gid, centroid, g.Trie.Count, len(nodes), len(leaves),
				skel.GroupPartitions(gid), g.DefaultPartition)
		}
	}

	if *partitions {
		fmt.Println("partitions:")
		for pid, cnt := range db.Index().Partitions().Counts {
			est := 0
			if pid < len(skel.PartitionEst) {
				est = skel.PartitionEst[pid]
			}
			fmt.Printf("  beta%-4d records=%-8d estimated=%-8d path=%s\n",
				pid, cnt, est, db.Index().Partitions().Paths[pid])
		}
	}

	if *verify {
		bad := 0
		for pid, path := range db.Index().Partitions().Paths {
			p, err := storage.OpenPartition(path)
			if err != nil {
				fmt.Printf("  beta%-4d OPEN FAILED: %v\n", pid, err)
				bad++
				continue
			}
			if err := p.Verify(); err != nil {
				fmt.Printf("  beta%-4d CORRUPT: %v\n", pid, err)
				bad++
			}
			p.Close()
		}
		if bad == 0 {
			fmt.Printf("verify: all %d partitions intact\n", len(db.Index().Partitions().Paths))
		} else {
			log.Fatalf("verify: %d of %d partitions corrupt", bad, len(db.Index().Partitions().Paths))
		}
	}
}

// printStats renders the skeleton's shape: per-trie node counts, the full
// leaf-depth histogram with bars, and the distribution of real partition
// sizes (quantiles plus a power-of-two size histogram).
func printStats(db *climber.DB) {
	skel := db.Index().Skeleton()
	desc := skel.Describe()

	fmt.Println("skeleton shape:")
	interior := desc.TrieNodes - desc.TrieLeaves
	fmt.Printf("  tries:  %d groups, %d nodes (%d interior, %d leaves), max depth %d\n",
		skel.NumGroups(), desc.TrieNodes, interior, desc.TrieLeaves, desc.MaxDepth)

	fmt.Println("  leaf depth histogram:")
	maxCnt := 0
	for _, cnt := range desc.DepthHistogram {
		if cnt > maxCnt {
			maxCnt = cnt
		}
	}
	for depth, cnt := range desc.DepthHistogram {
		if cnt == 0 {
			continue
		}
		fmt.Printf("    depth %-3d %8d %s\n", depth, cnt, bar(cnt, maxCnt))
	}

	counts := append([]int(nil), db.Index().Partitions().Counts...)
	if len(counts) == 0 {
		fmt.Println("  partitions: none")
		return
	}
	sort.Ints(counts)
	total := 0
	for _, c := range counts {
		total += c
	}
	q := func(p float64) int { return counts[int(p*float64(len(counts)-1))] }
	fmt.Printf("  partition sizes: %d partitions, %d records total\n", len(counts), total)
	fmt.Printf("    min=%d p25=%d median=%d p75=%d p90=%d max=%d mean=%.1f\n",
		counts[0], q(0.25), q(0.50), q(0.75), q(0.90), counts[len(counts)-1],
		float64(total)/float64(len(counts)))

	// Power-of-two size buckets show the skew a single mean hides.
	buckets := map[int]int{} // bucket exponent -> partition count
	maxExp := 0
	for _, c := range counts {
		exp := 0
		for v := c; v > 1; v >>= 1 {
			exp++
		}
		buckets[exp]++
		if exp > maxExp {
			maxExp = exp
		}
	}
	maxB := 0
	for _, n := range buckets {
		if n > maxB {
			maxB = n
		}
	}
	fmt.Println("  partition size distribution (records, power-of-two buckets):")
	for exp := 0; exp <= maxExp; exp++ {
		n := buckets[exp]
		if n == 0 {
			continue
		}
		fmt.Printf("    [%6d, %6d) %6d %s\n", 1<<exp, 1<<(exp+1), n, bar(n, maxB))
	}
}

// bar renders a proportional histogram bar, widest at 40 chars.
func bar(n, max int) string {
	if max <= 0 {
		return ""
	}
	w := n * 40 / max
	if w == 0 && n > 0 {
		w = 1
	}
	return strings.Repeat("#", w)
}
