// Command climber-inspect prints the structure of a built CLIMBER database:
// the group list with centroids (the paper's Figure 5 left side), trie
// shapes, and partition occupancy.
//
// Usage:
//
//	climber-inspect -dir ./db [-groups] [-partitions]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"climber"
	"climber/internal/storage"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("climber-inspect: ")

	var (
		dir        = flag.String("dir", "", "database directory (required)")
		groups     = flag.Bool("groups", false, "list every group with its centroid and trie shape")
		partitions = flag.Bool("partitions", false, "list per-partition record counts")
		verify     = flag.Bool("verify", false, "checksum every partition file")
	)
	flag.Parse()
	if *dir == "" {
		flag.Usage()
		os.Exit(2)
	}

	db, err := climber.Open(*dir, climber.WithReadOnly())
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	info := db.Info()
	skel := db.Index().Skel
	cfg := skel.Cfg

	fmt.Printf("CLIMBER database %s\n", *dir)
	fmt.Printf("  series length:  %d\n", info.SeriesLen)
	fmt.Printf("  records:        %d\n", info.NumRecords)
	fmt.Printf("  groups:         %d (incl. fall-back G0)\n", info.NumGroups)
	fmt.Printf("  partitions:     %d\n", info.NumPartitions)
	fmt.Printf("  skeleton size:  %d bytes\n", info.SkeletonBytes)
	fmt.Printf("  config:         w=%d r=%d m=%d capacity=%d alpha=%.3f decay=%v seed=%d\n",
		cfg.Segments, cfg.NumPivots, cfg.PrefixLen, cfg.Capacity, cfg.SampleRate, cfg.Decay, cfg.Seed)

	desc := skel.Describe()
	fmt.Printf("  trie forest:    %d nodes, %d leaves, max depth %d\n",
		desc.TrieNodes, desc.TrieLeaves, desc.MaxDepth)
	fmt.Printf("  leaf depths:    ")
	for depth, cnt := range desc.DepthHistogram {
		if cnt > 0 {
			fmt.Printf("d%d:%d ", depth, cnt)
		}
	}
	fmt.Println()
	fmt.Printf("  partition est.: min=%d max=%d (capacity %d)\n",
		desc.SmallestPartitionEst, desc.LargestPartitionEst, cfg.Capacity)

	if *groups {
		fmt.Println("groups:")
		for gid := 0; gid < skel.NumGroups(); gid++ {
			g := skel.Groups[gid]
			nodes := g.Trie.Nodes()
			leaves := g.Trie.Leaves()
			centroid := "<*>"
			if g.Centroid != nil {
				centroid = g.Centroid.String()
			}
			fmt.Printf("  G%-4d centroid=%-40s est=%-8d trie: %d nodes, %d leaves, partitions=%v default=%d\n",
				gid, centroid, g.Trie.Count, len(nodes), len(leaves),
				skel.GroupPartitions(gid), g.DefaultPartition)
		}
	}

	if *partitions {
		fmt.Println("partitions:")
		for pid, cnt := range db.Index().Parts.Counts {
			est := 0
			if pid < len(skel.PartitionEst) {
				est = skel.PartitionEst[pid]
			}
			fmt.Printf("  beta%-4d records=%-8d estimated=%-8d path=%s\n",
				pid, cnt, est, db.Index().Parts.Paths[pid])
		}
	}

	if *verify {
		bad := 0
		for pid, path := range db.Index().Parts.Paths {
			p, err := storage.OpenPartition(path)
			if err != nil {
				fmt.Printf("  beta%-4d OPEN FAILED: %v\n", pid, err)
				bad++
				continue
			}
			if err := p.Verify(); err != nil {
				fmt.Printf("  beta%-4d CORRUPT: %v\n", pid, err)
				bad++
			}
			p.Close()
		}
		if bad == 0 {
			fmt.Printf("verify: all %d partitions intact\n", len(db.Index().Parts.Paths))
		} else {
			log.Fatalf("verify: %d of %d partitions corrupt", bad, len(db.Index().Parts.Paths))
		}
	}
}
