// Command climber-query runs approximate kNN queries against a database
// built by climber-build, optionally comparing against the exact answer to
// report recall.
//
// Usage:
//
//	climber-query -dir ./db -data rw.clmb -id 17 -k 100 -variant adaptive-4x -exact
//	climber-query -dir ./db -data rw.clmb -id 17 -k 100 -max-partitions 2
//	climber-query -dir ./db -data rw.clmb -id 17 -k 100 -time-budget 2ms -progressive
//
// The query series is drawn from the dataset file by record ID, matching
// the paper's workload ("query objects are randomly selected from the
// entire dataset"). -max-partitions and -time-budget turn the query into
// an anytime query: it stops when the budget is spent and reports its best
// partial answer; -progressive streams the improving snapshots as the
// engine executes plan steps.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"climber"
	"climber/internal/dataset"
	"climber/internal/dss"
	"climber/internal/obs"
	"climber/internal/series"
)

func parseVariant(s string) (climber.Variant, error) {
	switch s {
	case "knn":
		return climber.KNN, nil
	case "adaptive-2x":
		return climber.Adaptive2X, nil
	case "adaptive-4x":
		return climber.Adaptive4X, nil
	case "od-smallest":
		return climber.ODSmallest, nil
	default:
		return 0, fmt.Errorf("unknown variant %q (knn, adaptive-2x, adaptive-4x, od-smallest)", s)
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("climber-query: ")

	var (
		dir         = flag.String("dir", "", "database directory (required)")
		data        = flag.String("data", "", "dataset file the index was built from (required)")
		id          = flag.Int("id", 0, "record ID to use as the query")
		k           = flag.Int("k", 100, "answer size K")
		variant     = flag.String("variant", "adaptive-4x", "query algorithm: knn, adaptive-2x, adaptive-4x, od-smallest")
		exact       = flag.Bool("exact", false, "also compute the exact answer and report recall")
		show        = flag.Int("show", 10, "number of results to print")
		sample      = flag.Int("sample", 0, "evaluate a workload of this many random queries instead of one -id query")
		seed        = flag.Uint64("seed", 7, "workload sampling seed (with -sample)")
		explain     = flag.Bool("explain", false, "print the index-navigation trace")
		cache       = flag.Int64("cache-bytes", 0, "partition cache budget in bytes (0 disables the cache)")
		mmap        = flag.Bool("mmap", false, "memory-map cached partition files instead of decoding them onto the heap (requires -cache-bytes)")
		maxParts    = flag.Int("max-partitions", 0, "bound the query to at most this many partition loads (0 = unbounded); truncated answers are reported partial")
		timeBudget  = flag.Duration("time-budget", 0, "anytime-query time budget (e.g. 5ms); the engine answers with its best partial result at the deadline")
		progressive = flag.Bool("progressive", false, "stream progressive answer snapshots while the query runs")
	)
	flag.Parse()
	if *dir == "" || *data == "" {
		flag.Usage()
		os.Exit(2)
	}

	v, err := parseVariant(*variant)
	if err != nil {
		log.Fatal(err)
	}
	db, err := climber.Open(*dir, climber.WithPartitionCacheBytes(*cache), climber.WithMmap(*mmap), climber.WithReadOnly())
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	ds, err := dataset.LoadFile(*data)
	if err != nil {
		log.Fatal(err)
	}
	budgetOpts := func() []climber.SearchOption {
		var opts []climber.SearchOption
		if *maxParts > 0 {
			opts = append(opts, climber.WithMaxPartitions(*maxParts))
		}
		if *timeBudget > 0 {
			opts = append(opts, climber.WithTimeBudget(*timeBudget))
		}
		return opts
	}

	if *sample > 0 {
		// The workload evaluator compares every variant; -variant applies
		// to single-query mode only.
		evaluateWorkload(db, ds, *sample, *k, *seed, *cache > 0, budgetOpts())
		printCacheStats(db, *cache)
		return
	}
	if *id < 0 || *id >= ds.Len() {
		log.Fatalf("query id %d out of range [0, %d)", *id, ds.Len())
	}
	q := ds.Get(*id)

	start := time.Now()
	var res []climber.Result
	var stats climber.Stats
	switch {
	case *explain:
		// The explain path runs the exact same query (same option fold,
		// same engine entry point) under a local trace, so what it prints
		// can never describe a different plan or budget than the query the
		// user actually measures.
		tr := obs.NewTrace("search", "")
		ctx := obs.ContextWithSpan(context.Background(), tr.Root())
		var ex *climber.Explanation
		res, stats, ex, err = db.SearchExplainContext(ctx, q, *k,
			append(budgetOpts(), climber.WithVariant(v))...)
		if err != nil {
			log.Fatal(err)
		}
		tr.Root().End()
		fmt.Printf("explain (variant %s):\n", ex.Variant)
		fmt.Printf("  P4->  = %v\n", ex.RankSensitive)
		fmt.Printf("  P4-/> = %v\n", ex.RankInsensitive)
		fmt.Printf("  best OD = %d, candidate groups = %v, selected G%d\n",
			ex.BestOD, ex.CandidateGroups, ex.SelectedGroup)
		fmt.Printf("  trie path = %v (node size %d), partitions = %v\n",
			ex.MatchedPath, ex.TargetNodeSize, ex.Partitions)
		fmt.Printf("  plan (%d steps ranked, %d executed):\n", stats.StepsPlanned, stats.StepsExecuted)
		for i, st := range ex.Plan {
			state := "executed"
			if !st.Executed {
				state = "skipped (budget)"
			}
			target := fmt.Sprintf("%d clusters", st.Clusters)
			if st.Clusters == 0 {
				target = "whole partition"
			}
			fmt.Printf("    #%-3d partition %-6d od=%-3d depth=%-3d est=%-8d %-16s %s\n",
				i+1, st.Partition, st.OD, st.PathLen, st.Est, target, state)
		}
		fmt.Printf("  trace:\n")
		printSpan(tr.Root().Data(), "    ")
	case *progressive:
		var err error
		res, stats, err = db.SearchProgressive(q, *k, func(u climber.SearchUpdate) bool {
			kth := 0.0
			if len(u.Results) > 0 {
				kth = u.Results[len(u.Results)-1].Dist
			}
			marker := ""
			if u.Final {
				marker = " (final)"
			}
			fmt.Printf("  step %d/%d: %d results, k-th dist %.6f, %v elapsed%s\n",
				u.Step, u.StepsPlanned, len(u.Results), kth, time.Since(start).Round(time.Microsecond), marker)
			return true
		}, append(budgetOpts(), climber.WithVariant(v))...)
		if err != nil {
			log.Fatal(err)
		}
	default:
		var err error
		res, stats, err = db.SearchWithStats(q, *k, append(budgetOpts(), climber.WithVariant(v))...)
		if err != nil {
			log.Fatal(err)
		}
	}
	elapsed := time.Since(start)

	fmt.Printf("query id=%d k=%d variant=%s: %v\n", *id, *k, *variant, elapsed.Round(time.Microsecond))
	fmt.Printf("  groups=%d partitions=%d records=%d bytes=%d\n",
		stats.GroupsConsidered, stats.PartitionsScanned, stats.RecordsScanned, stats.BytesLoaded)
	if stats.Partial {
		fmt.Printf("  PARTIAL answer: budget %q exhausted after %d/%d plan steps\n",
			stats.BudgetExhausted, stats.StepsExecuted, stats.StepsPlanned)
	}
	n := *show
	if n > len(res) {
		n = len(res)
	}
	for i := 0; i < n; i++ {
		fmt.Printf("  #%-3d id=%-8d dist=%.6f\n", i+1, res[i].ID, res[i].Dist)
	}

	if *exact {
		exStart := time.Now()
		exactRes := dss.SearchDataset(ds, q, *k)
		exElapsed := time.Since(exStart)
		approx := make([]series.Result, len(res))
		for i, r := range res {
			approx[i] = series.Result{ID: r.ID, Dist: r.Dist}
		}
		fmt.Printf("exact scan: %v, recall = %.3f\n",
			exElapsed.Round(time.Microsecond), series.Recall(approx, exactRes))
	}
	printCacheStats(db, *cache)
}

// printSpan renders a span tree as an indented outline, one line per
// span: name, duration, then the span's attributes and labels in key
// order.
func printSpan(d *obs.SpanData, indent string) {
	if d == nil {
		return
	}
	line := fmt.Sprintf("%s%-10s %v", indent, d.Name, time.Duration(d.DurationNS).Round(time.Microsecond))
	keys := make([]string, 0, len(d.Attrs))
	for k := range d.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		line += fmt.Sprintf(" %s=%d", k, d.Attrs[k])
	}
	lkeys := make([]string, 0, len(d.Labels))
	for k := range d.Labels {
		lkeys = append(lkeys, k)
	}
	sort.Strings(lkeys)
	for _, k := range lkeys {
		line += fmt.Sprintf(" %s=%s", k, d.Labels[k])
	}
	fmt.Println(line)
	for _, c := range d.Children {
		printSpan(c, indent+"  ")
	}
}

// printCacheStats summarises the partition cache's effect when enabled.
func printCacheStats(db *climber.DB, budget int64) {
	if budget <= 0 {
		return
	}
	cs := db.CacheStats()
	fmt.Printf("partition cache: budget=%d hits=%d misses=%d evictions=%d bytes-saved=%d disk-loads=%d\n",
		budget, cs.Hits, cs.Misses, cs.Evictions, cs.BytesSaved, cs.PartitionsLoaded)
}

// evaluateWorkload runs the paper's evaluation protocol against a built
// database: sample queries uniformly from the dataset, compare every
// variant's answers to the exact scan, report averages. With the partition
// cache enabled the whole workload is pre-run once so every variant is
// timed against a warm cache — otherwise the first variant would pay all
// the cold misses and the timing comparison would be biased.
func evaluateWorkload(db *climber.DB, ds *series.Dataset, n, k int, seed uint64, warmCache bool, budgetOpts []climber.SearchOption) {
	_, qs := dataset.Queries(ds, n, seed)
	fmt.Printf("workload: %d queries, K=%d\n", len(qs), k)
	if warmCache {
		for _, q := range qs {
			if _, err := db.Search(q, k, climber.WithVariant(climber.ODSmallest)); err != nil {
				log.Fatal(err)
			}
		}
	}
	exact := make([][]series.Result, len(qs))
	exStart := time.Now()
	for i, q := range qs {
		exact[i] = dss.SearchDataset(ds, q, k)
	}
	fmt.Printf("ground truth (exact scans): %v total\n", time.Since(exStart).Round(time.Millisecond))

	variants := []struct {
		name string
		v    climber.Variant
	}{
		{"knn", climber.KNN},
		{"adaptive-2x", climber.Adaptive2X},
		{"adaptive-4x", climber.Adaptive4X},
		{"od-smallest", climber.ODSmallest},
	}
	fmt.Printf("%-12s %-8s %-12s %-12s %-10s %-8s\n", "variant", "recall", "avg-time", "records", "partitions", "partial")
	for _, vc := range variants {
		var recall float64
		var records, parts, partials int
		var total time.Duration
		for i, q := range qs {
			start := time.Now()
			res, stats, err := db.SearchWithStats(q, k, append(append([]climber.SearchOption(nil), budgetOpts...), climber.WithVariant(vc.v))...)
			if err != nil {
				log.Fatal(err)
			}
			total += time.Since(start)
			approx := make([]series.Result, len(res))
			for j, r := range res {
				approx[j] = series.Result{ID: r.ID, Dist: r.Dist}
			}
			recall += series.Recall(approx, exact[i])
			records += stats.RecordsScanned
			parts += stats.PartitionsScanned
			if stats.Partial {
				partials++
			}
		}
		nq := float64(len(qs))
		fmt.Printf("%-12s %-8.3f %-12v %-12.0f %-10.1f %d/%d\n",
			vc.name, recall/nq, (total / time.Duration(len(qs))).Round(time.Microsecond),
			float64(records)/nq, float64(parts)/nq, partials, len(qs))
	}
}
