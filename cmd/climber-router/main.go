// Command climber-router fronts a sharded CLIMBER deployment: N
// climber-serve processes, each owning one shard of the keyspace (built
// with climber-build -shards), behind one scatter-gather HTTP endpoint
// that speaks the exact single-node dialect.
//
// Usage:
//
//	climber-router -topology shards.json -addr :8080
//	climber-router -topology shards.json -quorum 2   # serve degraded reads
//
// The topology file is a static shard map:
//
//	{"shards": [
//	  {"id": "shard-0", "url": "http://localhost:9001"},
//	  {"id": "shard-1", "url": "http://localhost:9002"}
//	]}
//
// Endpoints (see internal/shard for the merged response shapes):
//
//	POST /search        scatter to every shard, merge global top-k
//	POST /search/batch  ditto, query by query
//	POST /search/prefix ditto for prefix queries
//	POST /append        rendezvous-route each series to its shard
//	POST /flush         force compaction on every shard
//	GET  /info          aggregate database shape + shard count
//	GET  /stats         router counters + every shard's /stats
//	GET  /healthz       aggregate shard health
//	GET  /metrics       Prometheus text exposition (climber_router_*)
//	GET  /debug/slow    slow-query log (ring buffer of traced slow/sampled queries)
//
// Observability: a search request carrying "explain": true comes back with
// the router's span tree — scatter and merge stages, one span per shard —
// and, nested under each shard span, that shard's own span tree and
// planner explanation (keyed by shard ID). The trace identity propagates
// to the shards in a traceparent-style header, so the router and every
// shard log the same query under one trace id. -debug-addr starts a
// second listener carrying net/http/pprof and /debug/slow.
//
// With -quorum 0 (the default) a query fails fast with 502 the moment any
// shard errors — no silently incomplete answers. With -quorum N a query
// succeeds, marked partial, as long as N shards answered, and /healthz
// stays 200 ("degraded") while that policy is servable. Appends walk the
// rendezvous order to the first healthy shard, so a dead shard sheds its
// write load onto the survivors without reshuffling everyone else's keys.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"climber/internal/obs"
	"climber/internal/shard"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("climber-router: ")

	var (
		topoPath     = flag.String("topology", "", "shards.json topology file (required)")
		addr         = flag.String("addr", ":8080", "listen address")
		quorum       = flag.Int("quorum", 0, "min shards that must answer a read (0 = all shards, fail fast)")
		maxInflight  = flag.Int("max-inflight", 0, "admission limit on concurrently routed requests (0 = 4 x GOMAXPROCS)")
		queueTimeout = flag.Duration("queue-timeout", 2*time.Second, "how long an over-limit request may wait for a slot before 429")
		maxK         = flag.Int("max-k", 10000, "largest accepted per-query answer size k")
		maxBatch     = flag.Int("max-batch", 256, "largest accepted batch query count")
		maxAppend    = flag.Int("max-append", 1024, "largest accepted append series count")
		bodyTimeout  = flag.Duration("body-timeout", 15*time.Second, "deadline for reading one request body")
		healthEvery  = flag.Duration("health-interval", 2*time.Second, "shard health probe period")
		shardTimeout = flag.Duration("shard-timeout", 0, "per-shard sub-request deadline (0 = client deadline only)")
		drainTimeout = flag.Duration("drain-timeout", 15*time.Second, "graceful-shutdown deadline for in-flight requests")
		debugAddr    = flag.String("debug-addr", "", "optional second listener for net/http/pprof and /debug/slow (e.g. localhost:6060)")
		slowThresh   = flag.Duration("slow-threshold", 500*time.Millisecond, "routed requests at least this slow enter the slow-query log (negative disables)")
		slowSample   = flag.Float64("slow-sample", 0, "probability in [0,1] that an arbitrary routed query is traced across the shards and slow-logged")
		slowLogSize  = flag.Int("slow-log-size", 128, "slow-query ring buffer capacity")
	)
	flag.Parse()
	if *topoPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	topo, err := shard.LoadTopology(*topoPath)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("topology %s: %d shards, %d ID namespaces", *topoPath, len(topo.Shards), topo.Stride())
	for _, s := range topo.Shards {
		log.Printf("  %-12s %s (id_base %d)", s.ID, s.URL, *s.IDBase)
	}

	r := shard.NewRouter(topo, shard.Config{
		MaxInFlight:     *maxInflight,
		QueueTimeout:    *queueTimeout,
		MaxK:            *maxK,
		MaxBatch:        *maxBatch,
		MaxAppend:       *maxAppend,
		BodyReadTimeout: *bodyTimeout,
		Quorum:          *quorum,
		HealthInterval:  *healthEvery,
		ShardTimeout:    *shardTimeout,
		SlowLogSize:     *slowLogSize,
		SlowThreshold:   *slowThresh,
		SlowSample:      *slowSample,
	})
	defer r.Close()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           r.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	if *debugAddr != "" {
		// Diagnostics stay off the routed service port and its admission
		// control.
		go func() {
			log.Printf("debug listener (pprof, /debug/slow) on %s", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, obs.DebugMux(r.SlowLog())); err != nil {
				log.Printf("debug listener: %v", err)
			}
		}()
	}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("routing on %s (quorum policy: %s)", *addr, quorumName(*quorum))
		errCh <- httpSrv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case s := <-sig:
		log.Printf("received %v, draining in-flight requests", s)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}
}

func quorumName(q int) string {
	if q <= 0 {
		return "all shards"
	}
	return "quorum " + strconv.Itoa(q)
}
