// Command climber-bench regenerates the paper's evaluation artefacts
// (every figure and table of Section VII) at a chosen scale.
//
// Usage:
//
//	climber-bench -experiment fig7b -scale small
//	climber-bench -experiment all -scale medium -out results.txt
//
// Experiment IDs: fig7a fig7b fig7cd fig8ab fig8cd fig9 fig10 fig11a
// fig11b fig12 table1 (or "all"). Scales: small, medium, large. The
// experiment index lives in internal/experiments (each runner's doc
// comment names the paper artefact it reproduces).
//
// Beyond the paper artefacts, "mixed" runs a concurrent read/write workload
// against the streaming ingestion pipeline (internal/ingest) and reports
// append and search latency side by side, and "sharded" compares an
// unsharded DB with the same dataset split over four shard servers behind
// the scatter-gather router (internal/shard):
//
//	climber-bench -experiment mixed -scale small
//	climber-bench -experiment sharded -scale small
//
// "budget" measures the anytime-query contract: recall as a function of
// per-query partition and time budgets against the run-to-completion
// answer, plus a progressive-convergence trace. -max-partitions and
// -time-budget narrow the sweep to one budget value:
//
//	climber-bench -experiment budget -scale small
//	climber-bench -experiment budget -max-partitions 2
//
// "buildscale" measures the parallel index build (construction wall-time per
// phase as -workers-style parallelism sweeps 1..8 — the output is
// bit-identical at every point) and the scalar-vs-blocked scan kernels;
// -bench-json additionally writes the measurements as JSON (the checked-in
// BENCH_buildscale.json baseline):
//
//	climber-bench -experiment buildscale -scale small -bench-json BENCH_buildscale.json
//
// "tracing" measures the query-path cost of the internal/obs tracing layer
// with tracing off, sampled (1 in 16), and always on; -bench-json writes
// the measurements as JSON (the checked-in BENCH_tracing.json baseline —
// the "off" row guards the tracing-off overhead acceptance):
//
//	climber-bench -experiment tracing -scale small -bench-json BENCH_tracing.json
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"climber/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("climber-bench: ")

	var (
		experiment = flag.String("experiment", "all", "experiment id or 'all'")
		scaleName  = flag.String("scale", "small", "scale preset: small, medium, large")
		outPath    = flag.String("out", "", "also append output to this file")
		workDir    = flag.String("work", "", "working directory for build artefacts (default: temp)")
		cache      = flag.Int64("cache-bytes", 0, "partition cache budget in bytes for every experiment cluster (0 = off, the paper-faithful cost accounting)")
		mmap       = flag.Bool("mmap", false, "memory-map cached partition files in every experiment cluster (requires -cache-bytes)")
		maxParts   = flag.Int("max-partitions", 0, "budget experiment: evaluate this single partition budget instead of the default sweep")
		timeBudget = flag.Duration("time-budget", 0, "budget experiment: evaluate this single per-query time budget instead of the default sweep")
		benchJSON  = flag.String("bench-json", "", "buildscale/tracing experiments: also write the measurements as JSON to this file")
	)
	flag.Parse()
	experiments.PartitionCacheBytes = *cache
	experiments.PartitionCacheMmap = *mmap
	experiments.BudgetMaxPartitions = *maxParts
	experiments.BudgetTimeLimit = *timeBudget
	experiments.BenchJSONPath = *benchJSON

	scale, ok := experiments.Scales()[*scaleName]
	if !ok {
		log.Fatalf("unknown scale %q (small, medium, large)", *scaleName)
	}

	var ids []string
	if *experiment == "all" {
		ids = experiments.IDs()
	} else {
		if experiments.Registry()[*experiment] == nil {
			log.Fatalf("unknown experiment %q; available: %v", *experiment, experiments.IDs())
		}
		ids = []string{*experiment}
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.OpenFile(*outPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			// A failed close can mean buffered results never reached disk;
			// surface it instead of pretending the run was recorded.
			if err := f.Close(); err != nil {
				log.Printf("closing %s: %v", *outPath, err)
			}
		}()
		out = io.MultiWriter(os.Stdout, f)
	}

	work := *workDir
	if work == "" {
		var err error
		work, err = os.MkdirTemp("", "climber-bench-")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(work)
	}

	fmt.Fprintf(out, "# climber-bench scale=%s experiments=%v %s\n\n",
		scale.Name, ids, time.Now().Format(time.RFC3339))
	for _, id := range ids {
		start := time.Now()
		fmt.Fprintf(out, "=== %s ===\n", id)
		if err := experiments.Registry()[id](scale, work, out); err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		fmt.Fprintf(out, "(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
