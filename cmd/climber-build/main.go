// Command climber-build constructs a CLIMBER index over a dataset file
// produced by climber-gen.
//
// Usage:
//
//	climber-build -data rw.clmb -dir ./db -pivots 200 -prefix 10 -capacity 2000
//
// The resulting database directory is queried with climber-query and
// inspected with climber-inspect.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"climber"
	"climber/internal/dataset"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("climber-build: ")

	var (
		data     = flag.String("data", "", "dataset file from climber-gen (required)")
		dir      = flag.String("dir", "", "output database directory (required)")
		segments = flag.Int("segments", 16, "PAA segments w")
		pivots   = flag.Int("pivots", 200, "number of pivots r")
		prefix   = flag.Int("prefix", 10, "pivot prefix length m")
		capacity = flag.Int("capacity", 2000, "partition capacity in records")
		sample   = flag.Float64("sample", 0.1, "skeleton sampling rate alpha")
		seed     = flag.Uint64("seed", 42, "build seed")
		decay    = flag.String("decay", "exponential", "pivot weight decay: exponential or linear")
	)
	flag.Parse()
	if *data == "" || *dir == "" {
		flag.Usage()
		os.Exit(2)
	}

	ds, err := dataset.LoadFile(*data)
	if err != nil {
		log.Fatal(err)
	}
	opts := []climber.Option{
		climber.WithSegments(*segments),
		climber.WithPivots(*pivots),
		climber.WithPrefixLen(*prefix),
		climber.WithCapacity(*capacity),
		climber.WithSampleRate(*sample),
		climber.WithSeed(*seed),
	}
	if *decay == "linear" {
		opts = append(opts, climber.WithLinearDecay())
	}

	db, err := climber.BuildDataset(*dir, ds, opts...)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	info := db.Info()
	stats := db.Index().Stats
	fmt.Printf("built CLIMBER index in %s\n", *dir)
	fmt.Printf("  records:        %d (length %d)\n", info.NumRecords, info.SeriesLen)
	fmt.Printf("  groups:         %d (incl. fall-back G0)\n", info.NumGroups)
	fmt.Printf("  partitions:     %d\n", info.NumPartitions)
	fmt.Printf("  skeleton size:  %d bytes\n", info.SkeletonBytes)
	fmt.Printf("  build time:     total=%v skeleton=%v conversion=%v redistribution=%v\n",
		stats.Total.Round(1e6), stats.Skeleton.Round(1e6),
		stats.Conversion.Round(1e6), stats.Redistribution.Round(1e6))
}
