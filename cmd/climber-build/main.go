// Command climber-build constructs a CLIMBER index over a dataset file
// produced by climber-gen.
//
// Usage:
//
//	climber-build -data rw.clmb -dir ./db -pivots 200 -prefix 10 -capacity 2000
//
// The resulting database directory is queried with climber-query and
// inspected with climber-inspect. -workers fans the CPU-bound skeleton
// phases across that many goroutines (0 = all cores); the built index is
// bit-identical at any worker count, so the flag only trades build time.
//
// With -restore the command rebuilds a live database directory from a
// backup taken by POST /backup (or climber.DB.Backup):
//
//	climber-build -restore ./backups/nightly -dir ./db
//
// The backup tree is copied verbatim into -dir (which must not yet exist),
// then opened and verified; the restored database serves exactly the
// records the backup captured.
//
// With -shards N the dataset is split round-robin into N independent
// databases <dir>/shard-0 .. <dir>/shard-N-1, each a complete CLIMBER
// directory (own skeleton, partitions, WAL), plus a <dir>/shards.json
// topology template pointing at localhost ports 9001..900N — edit the URLs
// for a real deployment, start one climber-serve per shard directory, and
// front them with climber-router. Under the round-robin split record i of
// the dataset keeps global ID i through the router.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"climber"
	"climber/internal/dataset"
	"climber/internal/series"
	"climber/internal/shard"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("climber-build: ")

	var (
		data     = flag.String("data", "", "dataset file from climber-gen (required)")
		dir      = flag.String("dir", "", "output database directory (required)")
		segments = flag.Int("segments", 16, "PAA segments w")
		pivots   = flag.Int("pivots", 200, "number of pivots r")
		prefix   = flag.Int("prefix", 10, "pivot prefix length m")
		capacity = flag.Int("capacity", 2000, "partition capacity in records")
		sample   = flag.Float64("sample", 0.1, "skeleton sampling rate alpha")
		seed     = flag.Uint64("seed", 42, "build seed")
		workers  = flag.Int("workers", 0, "skeleton-build parallelism (0 = all cores, 1 = sequential; output is bit-identical at any count)")
		decay    = flag.String("decay", "exponential", "pivot weight decay: exponential or linear")
		shards   = flag.Int("shards", 0, "split the dataset into this many shard databases under -dir (0 = one unsharded database)")
		port     = flag.Int("shard-port", 9001, "first localhost port in the generated shards.json template")
		restore  = flag.String("restore", "", "restore a backup directory into -dir instead of building from -data")
	)
	flag.Parse()
	if *restore != "" {
		if *dir == "" {
			flag.Usage()
			os.Exit(2)
		}
		restoreBackup(*restore, *dir)
		return
	}
	if *data == "" || *dir == "" {
		flag.Usage()
		os.Exit(2)
	}

	ds, err := dataset.LoadFile(*data)
	if err != nil {
		log.Fatal(err)
	}
	opts := []climber.Option{
		climber.WithSegments(*segments),
		climber.WithPivots(*pivots),
		climber.WithPrefixLen(*prefix),
		climber.WithCapacity(*capacity),
		climber.WithSampleRate(*sample),
		climber.WithSeed(*seed),
		climber.WithBuildWorkers(*workers),
	}
	if *decay == "linear" {
		opts = append(opts, climber.WithLinearDecay())
	}

	if *shards > 1 {
		buildShards(ds, *dir, *shards, *port, opts)
		return
	}

	db, err := climber.BuildDataset(*dir, ds, opts...)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	printSummary(*dir, db)
}

// buildShards splits ds round-robin, builds one database per shard under
// dir (the climber.ShardDirs layout), and writes a shards.json topology
// template next to them.
func buildShards(ds *series.Dataset, dir string, n, firstPort int, opts []climber.Option) {
	topo := shard.LocalTopology(n, firstPort)
	dirs := climber.ShardDirs(dir, n)
	for s, sub := range shard.SplitDataset(ds, n) {
		db, err := climber.BuildDataset(dirs[s], sub, opts...)
		if err != nil {
			log.Fatalf("shard %d: %v", s, err)
		}
		printSummary(dirs[s], db)
		db.Close()
	}
	topoPath := filepath.Join(dir, "shards.json")
	if err := topo.Save(topoPath); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote topology template %s — edit the URLs, start one\n", topoPath)
	fmt.Printf("climber-serve per shard directory, then: climber-router -topology %s\n", topoPath)
}

// restoreBackup copies a backup tree (POST /backup output: a self-contained
// database directory with manifest paths relative to its root) verbatim
// into dst, then opens the copy to verify it. dst must not already exist:
// restoring over a live database would silently mix two record sets.
func restoreBackup(src, dst string) {
	if _, err := os.Stat(dst); err == nil {
		log.Fatalf("restore target %s already exists; refusing to overwrite", dst)
	} else if !os.IsNotExist(err) {
		log.Fatal(err)
	}
	if err := copyTree(src, dst); err != nil {
		log.Fatalf("restore: %v", err)
	}
	db, err := climber.Open(dst)
	if err != nil {
		log.Fatalf("restored database failed verification: %v", err)
	}
	defer db.Close()
	info := db.Info()
	fmt.Printf("restored backup %s into %s\n", src, dst)
	fmt.Printf("  records:        %d (length %d)\n", info.NumRecords, info.SeriesLen)
	fmt.Printf("  groups:         %d (incl. fall-back G0)\n", info.NumGroups)
	fmt.Printf("  partitions:     %d\n", info.NumPartitions)
}

// copyTree recursively copies the directory src to dst (which must not
// exist). Backups contain only regular files and directories.
func copyTree(src, dst string) error {
	entries, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	for _, e := range entries {
		sp := filepath.Join(src, e.Name())
		dp := filepath.Join(dst, e.Name())
		if e.IsDir() {
			if err := copyTree(sp, dp); err != nil {
				return err
			}
			continue
		}
		data, err := os.ReadFile(sp)
		if err != nil {
			return err
		}
		if err := os.WriteFile(dp, data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

func printSummary(dir string, db *climber.DB) {
	info := db.Info()
	stats := db.Index().Stats
	fmt.Printf("built CLIMBER index in %s\n", dir)
	fmt.Printf("  records:        %d (length %d)\n", info.NumRecords, info.SeriesLen)
	fmt.Printf("  groups:         %d (incl. fall-back G0)\n", info.NumGroups)
	fmt.Printf("  partitions:     %d\n", info.NumPartitions)
	fmt.Printf("  skeleton size:  %d bytes\n", info.SkeletonBytes)
	fmt.Printf("  build time:     total=%v skeleton=%v conversion=%v redistribution=%v\n",
		stats.Total.Round(1e6), stats.Skeleton.Round(1e6),
		stats.Conversion.Round(1e6), stats.Redistribution.Round(1e6))
}
