// Command climber-gen generates the paper's evaluation datasets as seeded
// synthetic block files consumable by climber-build and climber-query.
//
// Usage:
//
//	climber-gen -dataset randomwalk -count 20000 -seed 1 -out rw.clmb
//
// Datasets: randomwalk (256 pts), sift (128 pts), dna (192 pts),
// eeg (256 pts). Each generator stands in for one of the corpora of the
// paper's evaluation (Section VII); see internal/dataset for the shapes.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"climber/internal/dataset"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("climber-gen: ")

	var (
		name  = flag.String("dataset", "randomwalk", fmt.Sprintf("dataset to generate, one of %v", dataset.Names()))
		count = flag.Int("count", 20000, "number of data series")
		seed  = flag.Uint64("seed", 1, "generator seed (same seed, same data)")
		out   = flag.String("out", "", "output file path (required)")
	)
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *count <= 0 {
		log.Fatalf("count must be positive, got %d", *count)
	}

	ds, err := dataset.ByName(*name, *count, *seed)
	if err != nil {
		log.Fatal(err)
	}
	if err := dataset.SaveFile(*out, ds); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d %s series of length %d to %s\n", ds.Len(), *name, ds.Length(), *out)
}
