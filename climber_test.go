package climber

import (
	"testing"

	"climber/internal/dataset"
	"climber/internal/dss"
	"climber/internal/series"
)

func smallData(n int) [][]float64 {
	ds := dataset.RandomWalk(64, n, 77)
	out := make([][]float64, n)
	for i := range out {
		x := make([]float64, 64)
		copy(x, ds.Get(i))
		out[i] = x
	}
	return out
}

func smallOpts() []Option {
	return []Option{
		WithSegments(8), WithPivots(24), WithPrefixLen(4),
		WithCapacity(200), WithSampleRate(0.2), WithBlockSize(250),
		WithSeed(3),
	}
}

// buildAndClose builds a database in dir and closes the handle immediately,
// leaving only the on-disk artefacts for a later Open. (An open handle owns
// the directory's single-writer WAL lock, so tests that reopen must release
// the builder first.)
func buildAndClose(tb testing.TB, dir string, data [][]float64, opts ...Option) {
	tb.Helper()
	db, err := Build(dir, data, opts...)
	if err != nil {
		tb.Fatal(err)
	}
	if err := db.Close(); err != nil {
		tb.Fatal(err)
	}
}

func TestBuildSearchRoundTrip(t *testing.T) {
	data := smallData(1500)
	db, err := Build(t.TempDir(), data, smallOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	res, err := db.Search(data[10], 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 15 {
		t.Fatalf("got %d results, want 15", len(res))
	}
	if res[0].ID != 10 || res[0].Dist > 1e-4 {
		t.Fatalf("self query should find itself first: %+v", res[0])
	}
	for i := 1; i < len(res); i++ {
		if res[i].Dist < res[i-1].Dist {
			t.Fatal("results not ascending")
		}
	}
}

func TestOpenReusesIndex(t *testing.T) {
	dir := t.TempDir()
	data := smallData(1200)
	db, err := Build(dir, data, smallOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	a, err := db.Search(data[7], 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil { // release the writer lock for reopen
		t.Fatal(err)
	}
	reopened, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	b, err := reopened.Search(data[7], 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("result counts differ after reopen: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatalf("result %d differs after reopen", i)
		}
	}
}

func TestSearchOptions(t *testing.T) {
	data := smallData(1500)
	db, err := Build(t.TempDir(), data, smallOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for _, v := range []Variant{KNN, Adaptive2X, Adaptive4X, ODSmallest} {
		res, stats, err := db.SearchWithStats(data[3], 10, WithVariant(v))
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if len(res) == 0 || stats.RecordsScanned == 0 {
			t.Fatalf("%v: empty result or stats", v)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(t.TempDir(), nil); err == nil {
		t.Error("empty dataset should fail")
	}
	ragged := [][]float64{make([]float64, 8), make([]float64, 9)}
	if _, err := Build(t.TempDir(), ragged); err == nil {
		t.Error("ragged series should fail")
	}
	if _, err := Build(t.TempDir(), smallData(50), WithPivots(0)); err == nil {
		t.Error("invalid option should fail")
	}
}

func TestInfo(t *testing.T) {
	data := smallData(1000)
	db, err := Build(t.TempDir(), data, smallOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	info := db.Info()
	if info.SeriesLen != 64 || info.NumRecords != 1000 {
		t.Fatalf("Info = %+v", info)
	}
	if info.NumGroups < 2 || info.NumPartitions < info.NumGroups || info.SkeletonBytes <= 0 {
		t.Fatalf("implausible Info: %+v", info)
	}
	if db.Dir() == "" || db.Index() == nil {
		t.Fatal("accessors broken")
	}
}

func TestAppendThroughPublicAPI(t *testing.T) {
	dir := t.TempDir()
	data := smallData(1200)
	db, err := Build(dir, data, smallOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	extra := smallData(30)[:5] // five fresh series (different slice of the walk space)
	ids, err := db.Append(extra)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 5 || ids[0] != 1200 {
		t.Fatalf("append ids = %v", ids)
	}
	if db.Info().NumRecords != 1205 {
		t.Fatalf("NumRecords = %d, want 1205", db.Info().NumRecords)
	}
	// The append persisted: Close compacts the delta, and reopening sees
	// the records from the partition files.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if reopened.Info().NumRecords != 1205 {
		t.Fatalf("reopened NumRecords = %d, want 1205", reopened.Info().NumRecords)
	}
	res, err := reopened.Search(extra[2], 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 || res[0].Dist > 1e-4 {
		t.Fatalf("appended record not findable after reopen: %+v", res)
	}
}

func TestAppendAfterReopen(t *testing.T) {
	dir := t.TempDir()
	data := smallData(1000)
	buildAndClose(t, dir, data, smallOpts()...)
	// Reopen and append: the ID sequence must continue from the manifest's
	// counts, not restart.
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	extra := smallData(1010)[1000:] // 10 fresh series
	ids, err := db.Append(extra)
	if err != nil {
		t.Fatal(err)
	}
	if ids[0] != 1000 || ids[9] != 1009 {
		t.Fatalf("append-after-reopen ids = %v, want 1000..1009", ids)
	}
	// A second append continues further.
	ids2, err := db.Append(extra[:3])
	if err != nil {
		t.Fatal(err)
	}
	if ids2[0] != 1010 {
		t.Fatalf("second append starts at %d, want 1010", ids2[0])
	}
	if db.Info().NumRecords != 1013 {
		t.Fatalf("NumRecords = %d, want 1013", db.Info().NumRecords)
	}
}

func TestSearchBatchPublicAPI(t *testing.T) {
	data := smallData(1000)
	db, err := Build(t.TempDir(), data, smallOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	queries := [][]float64{data[1], data[500], data[999]}
	batch, err := db.SearchBatch(queries, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 3 {
		t.Fatalf("batch size %d, want 3", len(batch))
	}
	for i, res := range batch {
		seq, err := db.Search(queries[i], 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != len(seq) || res[0].ID != seq[0].ID {
			t.Fatalf("batch query %d diverges from sequential", i)
		}
	}
}

func TestSearchPrefixPublicAPI(t *testing.T) {
	data := smallData(1200)
	db, err := Build(t.TempDir(), data, smallOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	short := make([]float64, 32)
	copy(short, data[9][:32])
	res, err := db.SearchPrefix(short, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no results for prefix query")
	}
	for i := 1; i < len(res); i++ {
		if res[i].Dist < res[i-1].Dist {
			t.Fatal("results not ascending")
		}
	}
	if _, err := db.SearchPrefix(make([]float64, 200), 10); err == nil {
		t.Error("over-length prefix accepted")
	}
}

func TestRecallAgainstExact(t *testing.T) {
	data := smallData(3000)
	db, err := Build(t.TempDir(), data, smallOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ds := series.NewDatasetCap(64, len(data))
	for _, x := range data {
		ds.Append(x)
	}
	sum := 0.0
	const k = 30
	qids := []int{5, 500, 1500, 2500, 2999}
	for _, qid := range qids {
		exact := dss.SearchDataset(ds, data[qid], k)
		res, err := db.Search(data[qid], k)
		if err != nil {
			t.Fatal(err)
		}
		sr := make([]series.Result, len(res))
		for i, r := range res {
			sr[i] = series.Result{ID: r.ID, Dist: r.Dist}
		}
		sum += series.Recall(sr, exact)
	}
	avg := sum / float64(len(qids))
	t.Logf("public API recall = %.3f", avg)
	if avg < 0.15 {
		t.Fatalf("recall %.3f implausibly low through the public API", avg)
	}
}
