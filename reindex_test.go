package climber

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"climber/internal/core"
)

// reindexVariants are the search algorithms the reindex and backup tests
// pin results across.
var reindexVariants = []Variant{KNN, Adaptive2X, Adaptive4X, ODSmallest}

// TestReindexRoundTrip is the tentpole's happy path: a reindex on a live
// database must preserve every record (built and appended), bump the
// generation, move the physical layout under gen-0001, survive a reopen
// from the MANIFEST pointer, and keep accepting appends afterwards.
func TestReindexRoundTrip(t *testing.T) {
	dir := t.TempDir()
	data := smallData(1200)
	db, err := Build(dir, data, ingestOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	extra := smallData(1240)[1200:]
	if _, err := db.Append(extra); err != nil {
		t.Fatal(err)
	}
	if g := db.Info().Generation; g != 0 {
		t.Fatalf("fresh database reports generation %d, want 0", g)
	}

	if err := db.Reindex(context.Background()); err != nil {
		t.Fatal(err)
	}
	if g := db.Info().Generation; g != 1 {
		t.Fatalf("generation = %d after reindex, want 1", g)
	}
	if n := db.Info().NumRecords; n != 1240 {
		t.Fatalf("NumRecords = %d after reindex, want 1240", n)
	}
	genRoot := filepath.Join(dir, "gen-0001")
	for _, p := range db.Index().Partitions().Paths {
		if rel, err := filepath.Rel(genRoot, p); err != nil || !filepath.IsLocal(rel) {
			t.Fatalf("partition %s not under %s after reindex", p, genRoot)
		}
	}

	// Every record — original and appended, the latter uncompacted at
	// reindex time — must still be findable by a self query.
	for _, i := range []int{0, 599, 1199} {
		res, err := db.Search(data[i], 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) == 0 || res[0].ID != i || res[0].Dist > 1e-4 {
			t.Fatalf("built record %d lost by reindex: %+v", i, res)
		}
	}
	for i, q := range extra {
		res, err := db.Search(q, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) == 0 || res[0].ID != 1200+i || res[0].Dist > 1e-4 {
			t.Fatalf("appended record %d lost by reindex: %+v", 1200+i, res)
		}
	}

	// The retired generation's files are deleted once no reader holds them.
	db.waitCleanupForTest()
	if _, err := os.Stat(filepath.Join(dir, "index.clms")); !os.IsNotExist(err) {
		t.Fatalf("old generation skeleton still present after cleanup: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "cluster")); !os.IsNotExist(err) {
		t.Fatalf("old generation partition tree still present after cleanup: %v", err)
	}

	// Appends keep working against the new generation.
	more := smallData(1250)[1240:]
	ids, err := db.Append(more)
	if err != nil {
		t.Fatal(err)
	}
	if ids[0] != 1240 {
		t.Fatalf("post-reindex append ID = %d, want 1240", ids[0])
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen resolves the MANIFEST pointer and replays the post-reindex WAL.
	re, err := Open(dir, ingestOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if g := re.Info().Generation; g != 1 {
		t.Fatalf("reopened generation = %d, want 1", g)
	}
	if n := re.Info().NumRecords; n != 1250 {
		t.Fatalf("reopened NumRecords = %d, want 1250", n)
	}
	res, err := re.Search(more[5], 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 || res[0].ID != 1245 || res[0].Dist > 1e-4 {
		t.Fatalf("post-reindex append lost by reopen: %+v", res)
	}
}

// TestCompactorRetargetsNewGeneration pins the refcount lifecycle and the
// compactor's retarget: a compaction right after the swap must drain into
// the NEW generation's partition files while a held reference keeps the old
// generation's files on disk, byte-for-byte unchanged; releasing the last
// reference triggers their deletion.
func TestCompactorRetargetsNewGeneration(t *testing.T) {
	dir := t.TempDir()
	db, err := Build(dir, smallData(1000), ingestOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// Hold the pre-reindex generation like an in-flight query would.
	g0 := db.Index().AcquireGeneration()
	oldPaths := append([]string(nil), g0.Parts.Paths...)
	oldBytes := make(map[string][]byte, len(oldPaths))
	for _, p := range oldPaths {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		oldBytes[p] = b
	}

	if err := db.Reindex(context.Background()); err != nil {
		t.Fatal(err)
	}
	extra := smallData(1030)[1000:]
	if _, err := db.Append(extra); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}

	// The compaction must have landed in gen-0001's files...
	newParts := db.Index().Partitions()
	total := 0
	genRoot := filepath.Join(dir, "gen-0001")
	for pid, p := range newParts.Paths {
		if rel, err := filepath.Rel(genRoot, p); err != nil || !filepath.IsLocal(rel) {
			t.Fatalf("post-swap compaction target %s outside %s", p, genRoot)
		}
		total += newParts.Counts[pid]
	}
	if total != 1030 {
		t.Fatalf("new generation holds %d persisted records after flush, want 1030", total)
	}

	// ...and the held old generation must be byte-identical on disk.
	for _, p := range oldPaths {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatalf("old generation file vanished while referenced: %v", err)
		}
		if string(b) != string(oldBytes[p]) {
			t.Fatalf("old generation file %s mutated after swap", p)
		}
	}

	// Dropping the last reference releases the files.
	g0.Release()
	db.waitCleanupForTest()
	for _, p := range oldPaths {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("old generation file %s survived release: %v", p, err)
		}
	}
	res, err := db.Search(extra[3], 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 || res[0].ID != 1003 || res[0].Dist > 1e-4 {
		t.Fatalf("record appended after swap not served: %+v", res)
	}
}

// TestBackupRestoreRoundTrip backs a database up mid-ingest, destroys the
// live directory, restores from the backup, and pins bit-identical results
// (ID and distance) against the pre-backup golden for every search variant
// and a prefix query.
func TestBackupRestoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	data := smallData(1100)
	db, err := Build(dir, data[:1000], ingestOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Append(data[1000:1100]); err != nil {
		t.Fatal(err)
	}
	// Settle the delta so the golden and the restored database agree on
	// where each record physically lives (the backup flushes too).
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}

	queries := [][]float64{data[3], data[512], data[1050]}
	type key struct{ q, v int }
	golden := map[key][]Result{}
	goldenPrefix := make([][]Result, len(queries))
	for qi, q := range queries {
		for vi, v := range reindexVariants {
			res, err := db.Search(q, 10, WithVariant(v))
			if err != nil {
				t.Fatal(err)
			}
			golden[key{qi, vi}] = res
		}
		res, err := db.SearchPrefix(q[:32], 10)
		if err != nil {
			t.Fatal(err)
		}
		goldenPrefix[qi] = res
	}

	backupDir := filepath.Join(t.TempDir(), "backup")
	if err := db.Backup(context.Background(), backupDir); err != nil {
		t.Fatal(err)
	}
	// A second backup into the same populated directory must refuse.
	if err := db.Backup(context.Background(), backupDir); err == nil {
		t.Fatal("backup into a non-empty directory succeeded")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Destroy the live database; the backup is all that remains.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}

	// Restore = copy the self-contained backup tree to a fresh directory
	// (what climber-build -restore does) and open it.
	restored := filepath.Join(t.TempDir(), "restored")
	copyTreeForTest(t, backupDir, restored)
	re, err := Open(restored, ingestOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if n := re.Info().NumRecords; n != 1100 {
		t.Fatalf("restored NumRecords = %d, want 1100", n)
	}
	for qi, q := range queries {
		for vi, v := range reindexVariants {
			res, err := re.Search(q, 10, WithVariant(v))
			if err != nil {
				t.Fatal(err)
			}
			assertSameResults(t, golden[key{qi, vi}], res, "variant", vi, qi)
		}
		res, err := re.SearchPrefix(q[:32], 10)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, goldenPrefix[qi], res, "prefix", 0, qi)
	}
	// The restored database is live: it accepts new writes.
	if _, err := re.Append(data[:1]); err != nil {
		t.Fatalf("restored database refused an append: %v", err)
	}
}

func assertSameResults(t *testing.T, want, got []Result, kind string, vi, qi int) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s %d query %d: %d results, want %d", kind, vi, qi, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s %d query %d result %d: got %+v, want %+v", kind, vi, qi, i, got[i], want[i])
		}
	}
}

// copyTreeForTest recursively copies a directory (regular files only), the
// restore procedure of climber-build -restore.
func copyTreeForTest(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		sp, dp := filepath.Join(src, e.Name()), filepath.Join(dst, e.Name())
		if e.IsDir() {
			copyTreeForTest(t, sp, dp)
			continue
		}
		b, err := os.ReadFile(sp)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(dp, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestReindexReadOnlyAndClosed pins the error contract on databases that
// cannot rebuild.
func TestReindexReadOnlyAndClosed(t *testing.T) {
	dir := t.TempDir()
	buildAndClose(t, dir, smallData(600), ingestOpts()...)

	ro, err := Open(dir, append(ingestOpts(), WithReadOnly())...)
	if err != nil {
		t.Fatal(err)
	}
	if err := ro.Reindex(context.Background()); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("read-only reindex returned %v, want ErrReadOnly", err)
	}
	ro.Close()

	db, err := Open(dir, ingestOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Reindex(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed reindex returned %v, want ErrClosed", err)
	}
}

// TestRepeatedReindex runs three consecutive rebuilds: each must advance the
// generation, relocate the layout, and preserve the record set — the stale-
// generation sweep at the next Open must not be needed for correctness.
func TestRepeatedReindex(t *testing.T) {
	dir := t.TempDir()
	data := smallData(900)
	db, err := Build(dir, data, ingestOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for round := 1; round <= 3; round++ {
		if err := db.Reindex(context.Background()); err != nil {
			t.Fatalf("reindex round %d: %v", round, err)
		}
		if g := db.Info().Generation; g != round {
			t.Fatalf("generation = %d after round %d", g, round)
		}
		if n := db.Info().NumRecords; n != 900 {
			t.Fatalf("NumRecords = %d after round %d, want 900", n, round)
		}
		res, err := db.Search(data[round*100], 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) == 0 || res[0].ID != round*100 || res[0].Dist > 1e-4 {
			t.Fatalf("round %d: self query lost: %+v", round, res)
		}
	}
	db.waitCleanupForTest()
	// Only the live generation directory remains.
	for _, stale := range []string{"gen-0001", "gen-0002"} {
		if _, err := os.Stat(filepath.Join(dir, stale)); !os.IsNotExist(err) {
			t.Fatalf("stale %s survived its cleanup: %v", stale, err)
		}
	}
	root, num, err := core.ActiveGeneration(dir)
	if err != nil {
		t.Fatal(err)
	}
	if num != 3 || root != filepath.Join(dir, "gen-0003") {
		t.Fatalf("MANIFEST resolves to (%s, %d), want gen-0003", root, num)
	}
}
